"""Horizontally partitioned collections with scatter-gather search.

:class:`ShardedSeda` hash-partitions a corpus across N independent
:class:`~repro.system.Seda` shards, builds their indexes in parallel
(one OS process per shard -- the workers ship their snapshot payloads
back, which pickle cheaply, and the parent rehydrates them exactly as
a snapshot load would), and answers ``search``/``search_many`` by
scatter-gather: fan the query to per-shard
:class:`~repro.search.topk.TopKSearcher`\\ s, then merge the per-shard
top-k lists under the system's deterministic total order.

Merge-equivalence invariants
----------------------------

Results are **byte-identical** to an unsharded build over the same
corpus.  Four invariants carry that guarantee:

1. **Global node ids.**  Node ids are allocated sequentially in global
   document order, so each shard's local id space is translated back
   through the topology table (per-document node counts, kept in the
   sharded manifest) before merging.  Scores *and* ids match the
   unsharded build.
2. **Global term statistics.**  Idf is a corpus statistic; every shard
   index scores through one :class:`~repro.index.inverted.GlobalTermStats`
   that sums ``df``/``N`` across all shards
   (:meth:`InvertedIndex.use_global_stats`), so per-shard content
   scores are the exact floats the unsharded index produces.
3. **Link co-location.**  A result tuple can only span documents
   connected by a link edge, and per-shard link discovery can only see
   its own documents -- so every discovered cross-document link must
   stay within one shard.  Corpora whose IDREF/XLink/value links span
   documents need a partitioner that co-locates each linked group (the
   built-in name-hash policy does not inspect content).
4. **Deterministic merge.**  Per-shard lists are concatenated and
   sorted by ``(-score, node_ids)`` -- the same strict total order the
   top-k heap evicts under -- so ties resolve identically to the
   unsharded search, and any tuple in the global top-k is necessarily
   inside its own shard's top-k (fewer than k tuples beat it anywhere).

Cross-shard pruning: the scatter shares one
:class:`~repro.search.topk.SharedBound` per query, so each shard
prunes candidate tuples (and early-stops its TA loop) against the best
k-th score any shard has published -- only *strictly* worse candidates
are dropped, which cannot change the merged top-k.
"""

import bisect
import json
import os
import secrets
import shutil
import threading
import time
import warnings
import zlib

from repro.compact.shm import Sidecar, publish_shared_memory
from repro.index.inverted import GlobalTermStats
from repro.model.links import ValueLinkSpec
from repro.query.term import Query
from repro.search.result import ResultTuple
from repro.search.topk import SharedBound, TopKSearcher
from repro.shard.partition import PARTITIONERS, resolve_partitioner
from repro.storage.snapshot import (
    SnapshotError,
    clear_obs_state,
    next_shard_generation,
    read_obs_state,
    read_sharded_manifest,
    shard_file_name,
    sidecar_file_name,
    write_obs_state,
    write_sharded_manifest,
    write_snapshot,
)
from repro.storage.wal import (
    WriteAheadLog,
    replay_wal,
    sharded_wal_file_name,
)
from repro.system import Seda, _normalize_documents

#: Mapping from shard file to published shared-memory segment, written
#: next to the manifest by :func:`publish_shared_payload` (advisory,
#: like ``obs.json``: never required to load the directory).
SHARED_PAYLOAD_FILE = "shared_payload.json"
SHARED_PAYLOAD_FORMAT = "seda-shared-payload"
SHARED_PAYLOAD_VERSION = 1


def _build_shard_payload(args):
    """Worker-process entry: build one shard, return its payload.

    Module-level so :class:`~concurrent.futures.ProcessPoolExecutor`
    can pickle a reference to it.  The returned ``(meta, records,
    node_counts)`` triple is :meth:`Seda.snapshot_payload` plus the
    per-document node counts (in shard document order) the parent needs
    to assemble the global topology without rehydrating the shard --
    plain dictionaries and lists, the only shard representation that
    crosses the process boundary (live systems carry locks and do not
    pickle).
    """
    shard_name, pairs, link_dicts, seda_kwargs = args
    seda = Seda.from_documents(
        pairs,
        value_links=[ValueLinkSpec.from_dict(record) for record in link_dicts],
        name=shard_name,
        **seda_kwargs,
    )
    meta, records = seda.snapshot_payload()
    node_counts = [
        len(document.nodes) for document in seda.collection.documents
    ]
    return meta, records, node_counts


class ShardSearchTimeout(RuntimeError):
    """A shard's search exceeded the configured degradation timeout."""


class DegradationPolicy:
    """How scatter-gather behaves when a shard fails or stalls.

    Attached by :meth:`ShardedSeda.configure_degradation`; ``None`` (the
    default) keeps the original fail-fast scatter byte-for-byte.

    * ``retries``/``backoff`` -- failed shard searches are retried with
      exponential backoff (``backoff * 2**(attempt-1)`` seconds) on a
      freshly built searcher; a failed or timed-out searcher is never
      reused.
    * ``timeout`` -- seconds before one shard's search counts as
      stalled (runs the search on a helper thread; the abandoned
      attempt finishes in the background -- Python threads cannot be
      killed -- its result is discarded).
    * ``recover`` -- on failure, rehydrate the shard from its snapshot
      file plus the write-ahead log before retrying (crashed-shard
      recovery); timeouts skip this, a slow shard is not a broken one.
    * ``allow_partial`` -- after retries are exhausted, serve the
      healthy shards' merged results and flag the failed shard in the
      stats instead of raising.  Off by default: partial results are
      not byte-identical to the unsharded system, so they are opt-in.
    """

    __slots__ = ("retries", "backoff", "timeout", "allow_partial",
                 "recover")

    def __init__(self, retries=1, backoff=0.05, timeout=None,
                 allow_partial=False, recover=True):
        if retries < 0:
            raise ValueError("retries must be >= 0")
        self.retries = retries
        self.backoff = backoff
        self.timeout = timeout
        self.allow_partial = allow_partial
        self.recover = recover

    def __repr__(self):
        return (
            f"DegradationPolicy(retries={self.retries}, "
            f"backoff={self.backoff}, timeout={self.timeout}, "
            f"allow_partial={self.allow_partial}, "
            f"recover={self.recover})"
        )


def failed_shard_stats(shard_index, error):
    """The stats entry a failed shard contributes under ``allow_partial``.

    Same counter keys as :func:`shard_stats_snapshot` (zeros -- the
    shard contributed no work) plus ``"failed"`` carrying the error, so
    aggregation code iterates one uniform shape.
    """
    return {
        "shard": shard_index,
        "sorted_accesses": 0,
        "tuples_scored": 0,
        "pruned": 0,
        "early_stop": False,
        "failed": f"{type(error).__name__}: {error}",
    }


def shard_stats_snapshot(shard_index, searcher):
    """One shard's contribution to a scatter's statistics.

    Both scatter paths (:meth:`ShardedSeda.search` and the sharded
    query service) record the same shape, so per-shard reporting and
    batch aggregation always agree on which counters exist.
    """
    raw = searcher.stats
    return {
        "shard": shard_index,
        "sorted_accesses": raw["sorted_accesses"],
        "tuples_scored": raw["tuples_scored"],
        "pruned": raw["pruned"],
        "early_stop": raw["early_stop"],
    }


class _ShardSlot:
    """One shard: a live system, or a deferred one restored on demand.

    The deferred forms are a snapshot ``path`` (lazy sharded-snapshot
    restore) or an in-memory snapshot ``payload`` (a parallel build's
    worker output: the parent defers the rehydration cost -- rebuilding
    node objects, raw posting tables -- until the shard is first
    searched, exactly like a lazy snapshot load).
    """

    __slots__ = ("path", "on_load", "pending_bumps", "shared_segment",
                 "_payload", "_seda", "_lock")

    def __init__(self, seda=None, path=None, payload=None):
        self.path = path
        self.on_load = None
        #: Graph-version bumps owed to this shard while it was still
        #: deferred (corpus-wide statistics changed under it); applied
        #: at materialization so untouched shards need not rehydrate
        #: just to expire their score-carrying caches.
        self.pending_bumps = 0
        #: Name of a published shared-memory segment holding this
        #: shard's column sidecar; when set, restore attaches it
        #: instead of mapping the ``.cols`` file, so N worker processes
        #: share one physical copy of the columns.
        self.shared_segment = None
        self._payload = payload
        self._seda = seda
        self._lock = threading.Lock()

    @property
    def loaded(self):
        return self._seda is not None

    def reset(self):
        """Drop the live system so the next :meth:`get` rehydrates.

        Crash recovery for a shard whose in-memory state is broken:
        only valid for slots with a backing snapshot file (a live-built
        or payload-consumed slot has nothing on disk to return to).
        """
        with self._lock:
            if self.path is None and self._payload is None:
                raise ValueError(
                    "shard has no backing snapshot to recover from; "
                    "save the collection first"
                )
            self._seda = None

    def get(self):
        """The live shard system, restoring it on first use."""
        seda = self._seda
        if seda is None:
            with self._lock:
                seda = self._seda
                if seda is None:
                    if self._payload is not None:
                        seda = Seda.from_payload(*self._payload)
                        self._payload = None
                    else:
                        sidecar = (
                            Sidecar.from_shared_memory(self.shared_segment)
                            if self.shared_segment is not None
                            else None
                        )
                        seda = Seda.load(self.path, sidecar=sidecar,
                                         durable=False)
                    if self.on_load is not None:
                        # Wire global statistics before publishing the
                        # shard, so no reader ever scores locally.
                        self.on_load(seda)
                    while self.pending_bumps:
                        seda.graph.bump_version()
                        self.pending_bumps -= 1
                    self._seda = seda
        return seda

    def save_to(self, path):
        """Write this shard's snapshot to ``path``, cheapest way first.

        A live system serializes itself; a still-deferred payload is
        written straight out (the parallel-build -> save flow never
        rehydrates); a never-loaded path-backed slot cannot have been
        mutated, so its existing file is byte-copied (atomically, via
        temp file + rename, like every snapshot write).  A deferred
        slot that *owes version bumps* must materialize first: its
        saved file would otherwise carry impact streams still marked
        valid for the pre-mutation statistics.
        """
        if self._seda is None and self.pending_bumps:
            self.get()
        if self._seda is not None:
            self._seda.save(path, durable=False)
            return
        with self._lock:
            if self._seda is not None:
                pass  # materialized concurrently; fall through below
            elif self._payload is not None:
                write_snapshot(path, self._payload[0], self._payload[1])
                return
            else:
                if os.path.exists(path) and os.path.samefile(
                    self.path, path
                ):
                    return  # saving over its own source file
                # Copy the column sidecar first (the main file is the
                # commit record announcing it), then the snapshot.
                source_cols = sidecar_file_name(self.path)
                target_cols = sidecar_file_name(path)
                if os.path.exists(source_cols):
                    cols_tmp = f"{target_cols}.tmp"
                    shutil.copyfile(source_cols, cols_tmp)
                    os.replace(cols_tmp, target_cols)
                else:
                    try:
                        os.remove(target_cols)
                    except OSError:
                        pass
                tmp_path = f"{path}.tmp"
                if os.path.basename(source_cols) != os.path.basename(
                    target_cols
                ):
                    _copy_snapshot_renaming_sidecar(
                        self.path, tmp_path, os.path.basename(target_cols)
                    )
                else:
                    shutil.copyfile(self.path, tmp_path)
                os.replace(tmp_path, path)
                return
        self._seda.save(path, durable=False)


def _copy_snapshot_renaming_sidecar(source, target, cols_basename):
    """Byte-copy a snapshot, re-pointing its header at ``cols_basename``.

    The content records copy verbatim, but a sidecar-bearing header
    announces its sidecar by *basename*; when a copy changes names
    (generational sharded saves), the announcement must follow the new
    name or the snapshot pair reads as torn on restore.  Rewriting the
    header also invalidates a version-5 integrity seal, so the seal
    line is re-computed over the rewritten header bytes.  Headers
    without a sidecar entry copy unchanged.
    """
    with open(source, "rb") as src, open(target, "wb") as dst:
        first = src.readline()
        try:
            header = json.loads(first)
        except ValueError:
            header = None
        if isinstance(header, dict) and "sidecar" in header:
            header["sidecar"]["file"] = cols_basename
            header_bytes = json.dumps(
                header, separators=(",", ":")
            ).encode("utf-8")
            dst.write(header_bytes)
            dst.write(b"\n")
            second = src.readline()
            try:
                seal = json.loads(second)
            except ValueError:
                seal = None
            if isinstance(seal, dict) and seal.get("record") == "integrity":
                seal["header_crc"] = zlib.crc32(header_bytes)
                dst.write(json.dumps(
                    seal, separators=(",", ":")
                ).encode("utf-8"))
                dst.write(b"\n")
            else:
                dst.write(second)
        else:
            dst.write(first)
        shutil.copyfileobj(src, dst)


class ShardedCollectionView:
    """Global-node-id facade over the per-shard collections.

    Quacks like :class:`~repro.model.collection.DocumentCollection` for
    the read operations result rendering needs (``node``/``content``),
    so :meth:`ResultTuple.describe` works unchanged on merged results.
    """

    def __init__(self, sharded):
        self._sharded = sharded

    def node(self, node_id):
        shard, local_id = self._sharded.to_local(node_id)
        return shard.collection.node(local_id)

    def content(self, node_id):
        shard, local_id = self._sharded.to_local(node_id)
        return shard.collection.content(local_id)

    def __repr__(self):
        return f"ShardedCollectionView({self._sharded!r})"


class ShardedSeda:
    """N independent SEDA shards behind one scatter-gather facade."""

    def __init__(self, slots, documents, name, value_links,
                 partitioner, partitioner_name, routing_epoch=0,
                 shard_doc_bases=None):
        self._slots = list(slots)
        #: Global-order document table: ``[name, shard_index,
        #: node_count]`` per document -- the topology record that
        #: defines the global node-id space *and* the explicit
        #: document->shard assignment map routing works from (the
        #: partitioner only places *new* documents; existing documents
        #: are always routed by this table).
        self._docs = [list(row) for row in documents]
        self.name = name
        self.value_links = tuple(value_links)
        self._partitioner = partitioner
        self._partitioner_name = partitioner_name
        self.stats = GlobalTermStats(
            lambda: (slot.get().inverted for slot in self._slots)
        )
        for slot in self._slots:
            slot.on_load = self._wire_shard
            if slot.loaded:
                self._wire_shard(slot.get())
        self._searchers = [None] * len(self._slots)
        self._service = None
        self.obs = None  # StatsRegistry; enable_observability() attaches one
        self._wal = None  # WriteAheadLog; enable_durability() attaches one
        #: Per shard, the global document count when that shard's
        #: backing file was written: write-ahead records with ``base >=
        #: _shard_doc_bases[s]`` are not in shard ``s``'s file and must
        #: be replayed onto it (the manifest's ``shard_doc_bases``).
        self._shard_doc_bases = (
            list(shard_doc_bases) if shard_doc_bases is not None
            else [len(self._docs)] * len(self._slots)
        )
        #: Manifest-owned routing epoch, bumped by every topology
        #: operation (split/merge/rebalance); serving layers fold it
        #: into their cache keys.
        self._routing_epoch = int(routing_epoch)
        self._degradation = None  # DegradationPolicy; configure_degradation()
        self._recovery_epoch = 0  # bumped by _recover_shard
        self.last_search_stats = None
        self._rebuild_topology()

    def _wire_shard(self, seda):
        seda.inverted.use_global_stats(self.stats)

    # -- construction ---------------------------------------------------------

    @classmethod
    def from_documents(cls, documents, shards=2, value_links=(),
                       name="collection", partitioner=None, parallel=True,
                       max_workers=None, **seda_kwargs):
        """Partition ``documents`` across ``shards`` and build each one.

        ``documents`` takes the same forms as
        :meth:`Seda.from_documents`.  With ``parallel=True`` (the
        default) shard builds fan out across worker processes -- the
        whole point of sharding a large corpus; ``parallel=False``
        builds in-process, which is what the parallel path is
        benchmarked against.  ``max_workers`` caps the process pool
        (default: one per shard, bounded by the CPU count).

        Merge equivalence requires link co-location (invariant 3 in
        the module docstring): ``value_links`` specs -- like IDREF and
        XLink attributes -- only produce the same edges as an
        unsharded build while every linked document pair lands on one
        shard.  The built-in partitioners are content-blind, so
        corpora with cross-document links need a caller-supplied
        ``partitioner`` that keeps each linked group together.
        """
        if shards < 1:
            raise ValueError("shards must be >= 1")
        pairs = []
        for index, document in enumerate(documents):
            if isinstance(document, tuple):
                pairs.append(document)
            else:
                pairs.append((f"doc-{index}", document))
        route, partitioner_name = resolve_partitioner(partitioner)
        per_shard = [[] for _ in range(shards)]
        assignment = []
        for index, (doc_name, source) in enumerate(pairs):
            shard = route(doc_name, index, shards) % shards
            assignment.append(shard)
            per_shard[shard].append((doc_name, source))
        specs = tuple(value_links)
        shard_names = [f"{name}#{shard}" for shard in range(shards)]
        if parallel and shards > 1:
            slots, counts_per_shard = cls._build_parallel(
                shard_names, per_shard, specs, seda_kwargs, max_workers
            )
        else:
            sedas = [
                Seda.from_documents(
                    shard_pairs, value_links=specs, name=shard_name,
                    **seda_kwargs,
                )
                for shard_name, shard_pairs in zip(shard_names, per_shard)
            ]
            slots = [_ShardSlot(seda=seda) for seda in sedas]
            counts_per_shard = [
                [len(document.nodes)
                 for document in seda.collection.documents]
                for seda in sedas
            ]
        # Assemble the global-order topology table: document j of shard
        # s is the j-th document routed there, in global order.
        positions = [0] * shards
        documents_table = []
        for (doc_name, _source), shard in zip(pairs, assignment):
            node_count = counts_per_shard[shard][positions[shard]]
            positions[shard] += 1
            documents_table.append([doc_name, shard, node_count])
        return cls(
            slots, documents_table, name, specs, route, partitioner_name,
        )

    @staticmethod
    def _build_parallel(shard_names, per_shard, specs, seda_kwargs,
                        max_workers):
        """Build every shard in its own OS process.

        Workers ship snapshot payloads back; the parent wraps each in a
        lazily rehydrating slot, so the build's wall time is the
        slowest worker plus transfer -- the (serial) cost of rebuilding
        live node objects from the payloads is deferred to each shard's
        first search, exactly like a lazy snapshot restore.
        """
        import concurrent.futures

        workers = max_workers
        if workers is None:
            workers = min(len(per_shard), os.cpu_count() or 1)
        link_dicts = [spec.to_dict() for spec in specs]
        jobs = [
            (shard_name, shard_pairs, link_dicts, seda_kwargs)
            for shard_name, shard_pairs in zip(shard_names, per_shard)
        ]
        if workers <= 1:
            outputs = [_build_shard_payload(job) for job in jobs]
        else:
            with concurrent.futures.ProcessPoolExecutor(
                max_workers=workers
            ) as pool:
                outputs = list(pool.map(_build_shard_payload, jobs))
        slots = [
            _ShardSlot(payload=(meta, records))
            for meta, records, _node_counts in outputs
        ]
        return slots, [node_counts for _m, _r, node_counts in outputs]

    # -- topology -------------------------------------------------------------

    def _rebuild_topology(self):
        """Recompute the id-translation tables from the document table."""
        shards = len(self._slots)
        global_bases = []
        doc_shard = []
        doc_local_base = []
        shard_docs = [[] for _ in range(shards)]
        shard_local_bases = [[] for _ in range(shards)]
        next_global = 0
        next_local = [0] * shards
        for global_index, (_name, shard, node_count) in enumerate(self._docs):
            global_bases.append(next_global)
            doc_shard.append(shard)
            doc_local_base.append(next_local[shard])
            shard_docs[shard].append(global_index)
            shard_local_bases[shard].append(next_local[shard])
            next_global += node_count
            next_local[shard] += node_count
        self._global_bases = global_bases
        self._doc_shard = doc_shard
        self._doc_local_base = doc_local_base
        self._shard_docs = shard_docs
        self._shard_local_bases = shard_local_bases
        self._node_count = next_global

    def to_global(self, shard_index, local_id):
        """Translate a shard-local node id to its global id."""
        bases = self._shard_local_bases[shard_index]
        position = bisect.bisect_right(bases, local_id) - 1
        if position < 0:
            raise KeyError(f"no node {local_id} in shard {shard_index}")
        global_index = self._shard_docs[shard_index][position]
        return self._global_bases[global_index] + (local_id - bases[position])

    def to_local(self, global_id):
        """Translate a global node id to ``(shard_system, local_id)``."""
        if not 0 <= global_id < self._node_count:
            raise KeyError(f"no node with id {global_id!r}")
        position = bisect.bisect_right(self._global_bases, global_id) - 1
        shard = self._doc_shard[position]
        local_id = self._doc_local_base[position] + (
            global_id - self._global_bases[position]
        )
        return self._slots[shard].get(), local_id

    # -- introspection --------------------------------------------------------

    @property
    def shard_count(self):
        return len(self._slots)

    @property
    def shards(self):
        """Every live shard system (restoring lazy ones)."""
        return tuple(slot.get() for slot in self._slots)

    def shard(self, index):
        return self._slots[index].get()

    @property
    def collection(self):
        """Global-id node view (for ``ResultTuple.describe`` etc.)."""
        return ShardedCollectionView(self)

    @property
    def document_count(self):
        return len(self._docs)

    @property
    def node_count(self):
        return self._node_count

    def info(self):
        """Topology digest: per-shard documents/nodes and load state."""
        per_shard = [
            {"shard": index, "documents": 0, "nodes": 0,
             "loaded": slot.loaded}
            for index, slot in enumerate(self._slots)
        ]
        for _name, shard, node_count in self._docs:
            per_shard[shard]["documents"] += 1
            per_shard[shard]["nodes"] += node_count
        return {
            "collection": self.name,
            "shards": len(self._slots),
            "partitioner": self._partitioner_name,
            "routing_epoch": self._routing_epoch,
            "documents": len(self._docs),
            "nodes": self._node_count,
            "per_shard": per_shard,
        }

    def index_memory(self):
        """Per-shard index-memory estimates (``repro shard info``).

        Forces every shard to load (the estimate is about what the
        indexes cost resident).  Each entry is one shard's
        :meth:`Seda.index_memory` report plus its shard number;
        ``totals`` sums the per-index ``column_bytes`` across shards --
        the figure shared-memory publication deduplicates.
        """
        per_shard = []
        column_bytes = 0
        for index, slot in enumerate(self._slots):
            report = slot.get().index_memory()
            report["shard"] = index
            column_bytes += sum(
                report[key]["column_bytes"]
                for key in ("inverted", "path_index", "streams")
            )
            per_shard.append(report)
        return {
            "shards": len(self._slots),
            "per_shard": per_shard,
            "totals": {"column_bytes": column_bytes},
        }

    # -- search ---------------------------------------------------------------

    def _searcher(self, index):
        searcher = self._searchers[index]
        if searcher is None:
            shard = self._slots[index].get()
            searcher = TopKSearcher(
                shard.matcher, shard.scoring, streams=shard.streams
            )
            self._searchers[index] = searcher
        return searcher

    def search(self, query, k=10):
        """Scatter-gather top-k; merged :class:`ResultTuple` list.

        The scatter is sequential by design: under the GIL concurrent
        shard searches buy nothing for one query, while a sequential
        fan-out lets every later shard prune against the k-th score the
        earlier shards already published into the shared bound.
        Returns result tuples with **global** node ids, byte-identical
        to an unsharded :meth:`Seda.search` over the same corpus (no
        session object: refinement loops operate per shard).
        """
        if not isinstance(query, Query):
            query = Query.parse(query)
        searchers = [
            self._searcher(index) for index in range(len(self._slots))
        ]
        gathered, per_shard = self.scatter(searchers, query, k)
        self.last_search_stats = {
            "per_shard": per_shard,
            "failed_shards": [
                {"shard": entry["shard"], "error": entry["failed"]}
                for entry in per_shard if entry.get("failed")
            ],
        }
        return self._merge(gathered, k)

    def scatter(self, searchers, query, k):
        """Run the scatter protocol over one searcher per shard.

        One :class:`SharedBound` couples the sequential fan-out; the
        return is ``(per-shard result lists, per-shard stats
        snapshots)``.  Both scatter paths -- direct :meth:`search` and
        the sharded query service's workers -- go through here, so the
        protocol (bound seeding order, stats shape) cannot drift
        between them.

        Without a :class:`DegradationPolicy` (the default) a shard
        failure propagates immediately -- fail-fast, byte-identical to
        the unsharded system.  With one (see
        :meth:`configure_degradation`) failed shard searches are
        retried with backoff, optionally bounded by a timeout and
        recovered from snapshot + write-ahead log; with
        ``allow_partial`` an unrecoverable shard contributes an empty
        result list and a ``"failed"``-flagged stats entry instead of
        raising.
        """
        bound = SharedBound()
        policy = self._degradation
        gathered = []
        per_shard = []
        for index, searcher in enumerate(searchers):
            if policy is None:
                gathered.append(
                    searcher.search(query, k=k, shared_bound=bound)
                )
                per_shard.append(shard_stats_snapshot(index, searcher))
                continue
            results, used, error = self._scatter_guarded(
                index, searcher, query, k, bound, policy
            )
            if error is None:
                gathered.append(results)
                per_shard.append(shard_stats_snapshot(index, used))
            elif policy.allow_partial:
                gathered.append([])
                per_shard.append(failed_shard_stats(index, error))
            else:
                raise error
        return gathered, per_shard

    def _scatter_guarded(self, index, searcher, query, k, bound, policy):
        """One shard's search under a degradation policy.

        Returns ``(results, searcher_used, error)`` with ``error`` set
        only after every attempt (initial + ``policy.retries``) failed.
        A failed or timed-out searcher is never reused -- retries run
        on a freshly built one against the (possibly just recovered)
        shard.
        """
        error = None
        for attempt in range(policy.retries + 1):
            if attempt:
                if policy.backoff:
                    time.sleep(policy.backoff * (2 ** (attempt - 1)))
                searcher = self._fresh_searcher(index)
            try:
                results = self._shard_search(
                    searcher, query, k, bound, policy.timeout
                )
                return results, searcher, None
            except ShardSearchTimeout as exc:
                # A slow shard is not a broken one: retry on a fresh
                # searcher (the stalled attempt finishes in the
                # background, its result discarded), skip recovery.
                error = exc
            except Exception as exc:  # noqa: BLE001 - any shard fault
                error = exc
                if policy.recover:
                    try:
                        self._recover_shard(index)
                    except Exception as recovery_error:  # noqa: BLE001
                        return None, searcher, recovery_error
        return None, searcher, error

    def _fresh_searcher(self, index):
        """A new searcher over shard ``index``'s current components."""
        shard = self._slots[index].get()
        return TopKSearcher(
            shard.matcher, shard.scoring, streams=shard.streams
        )

    @staticmethod
    def _shard_search(searcher, query, k, bound, timeout):
        """One shard search, optionally bounded by ``timeout`` seconds.

        The bounded form runs on a helper thread; on expiry the attempt
        is abandoned (the thread finishes in the background and its
        result is discarded) and :class:`ShardSearchTimeout` raises.
        """
        if timeout is None:
            return searcher.search(query, k=k, shared_bound=bound)
        box = {}

        def run():
            try:
                box["result"] = searcher.search(
                    query, k=k, shared_bound=bound
                )
            except BaseException as exc:  # noqa: BLE001 - relayed below
                box["error"] = exc

        thread = threading.Thread(
            target=run, daemon=True, name="seda-shard-search"
        )
        thread.start()
        thread.join(timeout)
        if thread.is_alive():
            raise ShardSearchTimeout(
                f"shard search exceeded {timeout}s (query still running "
                f"in the background; its result will be discarded)"
            )
        if "error" in box:
            raise box["error"]
        return box["result"]

    @property
    def recovery_epoch(self):
        """Bumped on every :meth:`_recover_shard`; serving layers fold
        it into their topology version so pooled searchers rebuild."""
        return self._recovery_epoch

    @property
    def routing_epoch(self):
        """Manifest-owned routing generation.

        Bumped by every topology operation (:meth:`split`,
        :meth:`merge`, :meth:`rebalance`); the serving layer folds it
        into its cache keys so generation-keyed reads distinguish
        pre- and post-topology states.
        """
        return self._routing_epoch

    def configure_degradation(self, retries=1, backoff=0.05, timeout=None,
                              allow_partial=False, recover=True,
                              enabled=True):
        """Attach (or with ``enabled=False`` detach) a degradation policy.

        See :class:`DegradationPolicy` for the knobs.  The default
        policy retries each failed shard once after recovering it from
        snapshot + write-ahead log and still fails fast when that does
        not help; pass ``allow_partial=True`` to serve healthy-shard
        results instead (flagged in the stats -- partial answers are
        never byte-identical, so they are opt-in).  Returns the policy
        (``None`` when disabling).
        """
        if not enabled:
            self._degradation = None
            return None
        self._degradation = DegradationPolicy(
            retries=retries, backoff=backoff, timeout=timeout,
            allow_partial=allow_partial, recover=recover,
        )
        return self._degradation

    def _recover_shard(self, index):
        """Rehydrate shard ``index`` from its snapshot + write-ahead log.

        Drops the broken in-memory system, restores the shard from its
        backing snapshot file, and re-applies every acknowledged
        write-ahead batch routed to it (re-running each batch's
        recorded routing), so the recovered shard reaches the exact
        pre-crash state.  Invalidates the cached searcher, the global
        term statistics, and the serving cache, and bumps
        :attr:`recovery_epoch` so pooled searcher groups rebuild.
        """
        slot = self._slots[index]
        slot.reset()
        seda = slot.get()  # on_load rewires the global statistics
        if self._wal is not None:
            records, _warning = replay_wal(self._wal.path, repair=False)
            mutated = False
            stale_stats = False
            for record in records:
                if record.get("op") != "add_documents":
                    continue
                base = record.get("base", 0)
                if base < self._shard_doc_bases[index]:
                    # Absorbed by the shard file this slot restores
                    # from (leftover of a crash between manifest commit
                    # and log truncation); re-applying would duplicate.
                    continue
                pairs = [tuple(pair)
                         for pair in record.get("documents", ())]
                specs = [ValueLinkSpec.from_dict(payload)
                         for payload in record.get("value_links", ())]
                # Route by the assignment map, never by partitioner
                # arithmetic: batches logged under an older routing
                # epoch (before a split/merge/rebalance) land exactly
                # where the document table says they live now.
                routed = [
                    pair for offset, pair in enumerate(pairs)
                    if base + offset < len(self._docs)
                    and self._docs[base + offset][1] == index
                ]
                if routed or specs:
                    seda.add_documents(routed, value_links=specs or None)
                    mutated = True
                else:
                    # The batch landed entirely on other shards, but it
                    # still moved the corpus-wide ``df``/``N`` after
                    # this shard's file was written: the restored
                    # streams carry scores for the old statistics.
                    stale_stats = True
            if stale_stats and not mutated:
                seda.graph.bump_version()
        self._searchers[index] = None
        self.stats.invalidate()
        self._recovery_epoch += 1
        if self._service is not None:
            self._service.invalidate()
        return seda

    def _merge(self, per_shard_results, k):
        """Translate to global ids and merge under the total order."""
        merged = []
        for shard_index, results in enumerate(per_shard_results):
            for result in results:
                merged.append(
                    ResultTuple(
                        tuple(
                            self.to_global(shard_index, node_id)
                            for node_id in result.node_ids
                        ),
                        result.content_scores,
                        result.compactness,
                        result.score,
                    )
                )
        merged.sort(key=lambda result: (-result.score, result.node_ids))
        return merged if k is None else merged[:k]

    # -- serving --------------------------------------------------------------

    def query_service(self, workers=None, cache_size=None):
        """The concurrent scatter-gather serving facade (lazy, kept).

        Same contract as :meth:`Seda.query_service`: repeated calls
        return the same service; an explicitly different configuration
        replaces it (dropping its warm cache).
        """
        from repro.service.query_service import keep_or_replace_service
        from repro.shard.service import ShardedQueryService

        self._service = keep_or_replace_service(
            self._service,
            lambda w, c: ShardedQueryService(self, workers=w, cache_size=c),
            workers, cache_size,
        )
        # The retained stats registry survives service replacement.
        self._service.registry = self.obs
        return self._service

    def enable_observability(self, slow_threshold=0.1, slow_log_size=128):
        """Attach a retained :class:`~repro.obs.registry.StatsRegistry`.

        Same contract as :meth:`Seda.enable_observability`; sharded
        stats additionally feed per-shard skew counters.  The registry
        persists as ``obs.json`` next to the sharded manifest.
        """
        if self.obs is None:
            from repro.obs.registry import StatsRegistry

            self.obs = StatsRegistry(
                slow_threshold=slow_threshold, slow_log_size=slow_log_size
            )
        if self._service is not None:
            self._service.registry = self.obs
        return self.obs

    def search_many(self, queries, k=10, workers=None):
        """Serve a batch concurrently; a list of merged result lists.

        Results are in input order, each list identical to
        :meth:`search` on that query (duplicates computed once, repeats
        served from the service's result cache).
        """
        parsed = [
            query if isinstance(query, Query) else Query.parse(query)
            for query in queries
        ]
        service = self.query_service(workers=workers)
        results, _stats = service.execute_batch(parsed, k=k)
        return results

    # -- ingestion ------------------------------------------------------------

    def add_documents(self, documents, value_links=None):
        """Route new documents to their shards; keep global scoring exact.

        Every shard is invalidated even when it receives no documents:
        new documents change the corpus-wide ``df``/``N`` behind idf,
        so the global statistics cache is dropped and every shard's
        graph version is bumped -- which is what expires the per-shard
        impact streams and result caches holding scores computed
        against the old statistics.  Shards still deferred (lazy
        restore) are not rehydrated for this: their bump is recorded
        on the slot and applied at materialization (or before a
        save).  New ``value_links`` specs are propagated to every
        shard's link discovery, mirroring the unsharded system.
        Returns the created documents in global input order (their
        ``doc_id``/node ids are shard-local).
        """
        base = len(self._docs)
        pairs = [
            (doc_name if doc_name is not None else f"doc-{base + index}",
             source)
            for index, (doc_name, source)
            in enumerate(_normalize_documents(documents))
        ]
        specs = tuple(value_links) if value_links else ()
        if self._partitioner is None:
            # Reject before logging: a batch that cannot be routed must
            # not enter the write-ahead log (replay would re-raise --
            # or worse, double-apply once a partitioner is supplied).
            raise ValueError(
                "this sharded collection was saved with a custom "
                "partitioner; reload it with ShardedSeda.load(path, "
                "partitioner=...) before adding documents"
            )
        if self._wal is not None:
            # Append-before-mutate, exactly as in Seda.add_documents:
            # the batch is fsynced before any shard index changes.
            # ``base`` (the global document count when the batch was
            # acknowledged) lets single-shard recovery re-run the
            # routing of this batch without replaying the others.
            # ``epoch`` is diagnostic: replay routes covered batches by
            # the manifest's assignment map and fresh batches by the
            # current partitioner, so records written under an older
            # routing epoch still land correctly after a topology
            # change (every topology commit covers all live documents).
            self._wal.append({
                "op": "add_documents",
                "base": base,
                "epoch": self._routing_epoch,
                "documents": [list(pair) for pair in pairs],
                "value_links": [spec.to_dict() for spec in specs],
            })
        return self._ingest(pairs, specs)

    def _ingest(self, pairs, new_specs):
        """Apply one normalized ``(name, xml)`` batch across the shards.

        The mutation body of :meth:`add_documents`, shared with WAL
        replay.  Routing is deterministic in (name, global index, shard
        count), so a replayed batch lands on the same shards the
        original call did.
        """
        if self._partitioner is None:
            raise ValueError(
                "this sharded collection was saved with a custom "
                "partitioner; reload it with ShardedSeda.load(path, "
                "partitioner=...) before adding documents"
            )
        base = len(self._docs)
        shards = len(self._slots)
        routed = [[] for _ in range(shards)]
        order = []
        for offset, (doc_name, source) in enumerate(pairs):
            shard = self._partitioner(doc_name, base + offset, shards) % shards
            order.append((shard, len(routed[shard])))
            routed[shard].append((doc_name, source))
        if new_specs:
            self.value_links = self.value_links + new_specs
        added_per_shard = []
        for index, slot in enumerate(self._slots):
            if routed[index] or new_specs:
                added = slot.get().add_documents(
                    routed[index], value_links=new_specs or None
                )
            else:
                added = []
            added_per_shard.append(added)
        added_global = []
        for offset, (doc_name, _source) in enumerate(pairs):
            shard, position = order[offset]
            document = added_per_shard[shard][position]
            self._docs.append([doc_name, shard, len(document.nodes)])
            added_global.append(document)
        self._rebuild_topology()
        self.stats.invalidate()
        for slot in self._slots:
            if slot.loaded:
                slot.get().graph.bump_version()
            else:
                slot.pending_bumps += 1
        if self._service is not None:
            self._service.invalidate()
        return added_global

    # -- snapshots ------------------------------------------------------------

    def save(self, directory):
        """Persist the whole sharded collection to one directory.

        One ordinary snapshot file per shard plus ``manifest.json``
        written last -- the manifest is the commit record, so a crash
        mid-save never leaves a directory that parses.  Re-saving into
        a directory that already holds a snapshot writes the shard
        files under a new *generation* (the old manifest keeps
        pointing at intact old files until the new manifest atomically
        replaces it), then deletes the superseded files.  Shards that
        are still deferred are written without being rehydrated: a
        lazily loaded collection can be re-saved (backed up,
        relocated) at file-copy cost.  The post-commit cleanup of
        superseded generations assumes this instance is the
        directory's only live handle -- another process lazily loaded
        from the same directory would lose the files its slots still
        point at (see docs/OPERATIONS.md).  See
        :mod:`repro.storage.snapshot` for the layout.
        """
        os.makedirs(directory, exist_ok=True)
        generation = next_shard_generation(directory)
        shard_files = []
        for index, slot in enumerate(self._slots):
            shard_file = shard_file_name(index, generation)
            slot.save_to(os.path.join(directory, shard_file))
            shard_files.append(shard_file)
        meta = {
            "collection": self.name,
            "shards": len(self._slots),
            "partitioner": self._partitioner_name,
            "value_links": [spec.to_dict() for spec in self.value_links],
        }
        # A full save rewrites every shard file, so every watermark
        # advances to the full document count; the routing epoch is
        # carried forward unchanged (it only moves on topology
        # operations).
        write_sharded_manifest(
            directory, meta, self._docs, shard_files, generation=generation,
            routing_epoch=self._routing_epoch,
            shard_doc_bases=[len(self._docs)] * len(self._slots),
        )
        # Observability history rides alongside the manifest (advisory:
        # written after the commit record, never required to load).  A
        # re-save with observability off clears any stale history.
        if self.obs is not None:
            write_obs_state(directory, self.obs.to_dict())
        else:
            clear_obs_state(directory)
        # Repoint slots whose backing file lives in *this* directory:
        # the re-save supersedes (and below, deletes) the generation
        # they were loaded from.  Slots backed by a different source
        # directory keep it -- saving a backup must not migrate the
        # live system onto the backup.  Slots with no backing file at
        # all (live-built) are anchored here: the saved files are what
        # crashed-shard recovery (:meth:`_recover_shard`) restores
        # from.
        target = os.path.abspath(directory)
        for slot, shard_file in zip(self._slots, shard_files):
            if slot.path is None or (
                os.path.dirname(os.path.abspath(slot.path)) == target
            ):
                slot.path = os.path.join(directory, shard_file)
        # The new manifest is committed; superseded generations (and
        # their column sidecars) are dead weight (best-effort cleanup
        # -- leftovers are harmless).  A shared-payload mapping from a
        # previous generation names segments holding superseded
        # columns, so it goes too.
        keep = set(shard_files) | {f"{name}.cols" for name in shard_files}
        for name in os.listdir(directory):
            if (name.startswith("shard-")
                    and (name.endswith(".snapshot")
                         or name.endswith(".snapshot.cols"))
                    and name not in keep):
                try:
                    os.remove(os.path.join(directory, name))
                except OSError:  # pragma: no cover - fs-dependent
                    pass
        try:
            os.remove(os.path.join(directory, SHARED_PAYLOAD_FILE))
        except OSError:
            pass
        # The committed manifest + shard files absorb every logged
        # batch; truncate only after the commit (a crash in between
        # replays batches the new snapshot already contains).
        wal_path = sharded_wal_file_name(directory)
        if self._wal is not None and self._wal.path == wal_path:
            self._wal.truncate()
        elif os.path.exists(wal_path):
            WriteAheadLog(wal_path).truncate()
        # Everything on disk now includes every live document; shard
        # recovery must not re-apply logged batches below these marks.
        self._shard_doc_bases = [len(self._docs)] * len(self._slots)
        # A saved collection is durable at that directory from here on
        # (the log file itself only appears on the first append).
        self.enable_durability(directory)

    def enable_durability(self, directory):
        """Attach a write-ahead log inside the snapshot ``directory``.

        Same contract as :meth:`Seda.enable_durability`: afterwards
        every :meth:`add_documents` batch is appended to
        ``<directory>/wal.log`` -- checksummed and fsynced -- before
        any shard mutates, :meth:`save` to that directory truncates the
        log after the manifest commits, and :meth:`load` replays it.
        Returns the :class:`~repro.storage.wal.WriteAheadLog`.
        """
        wal_path = sharded_wal_file_name(directory)
        if self._wal is not None:
            if self._wal.path == wal_path:
                return self._wal
            self._wal.close()
        os.makedirs(directory, exist_ok=True)
        self._wal = WriteAheadLog(wal_path)
        return self._wal

    def _replay_wal_records(self, wal_records, warning):
        """Apply replayed write-ahead batches to the restored shards."""
        if warning is not None:
            warnings.warn(warning, stacklevel=3)
        for record in wal_records:
            op = record.get("op")
            if op != "add_documents":
                from repro.storage.wal import WALError

                raise WALError(
                    f"write-ahead log holds unknown operation {op!r}; "
                    f"written by a newer version?"
                )
            base = record.get("base")
            if base is not None and base < len(self._docs):
                # ``base`` is the global document count when the batch
                # was acknowledged; the restored manifest already
                # counts past it, so the *manifest* absorbed this batch
                # -- but a topology commit rewrites only the affected
                # shards' files, so an unaffected shard's file may
                # still predate the batch.  Apply it to exactly those
                # stale shards, routed by the assignment map.
                self._apply_covered_batch(record, base)
                continue
            # A fresh batch (past the manifest) was necessarily written
            # under the *current* topology -- every topology operation
            # commits a manifest covering all live documents -- so the
            # current partitioner reproduces its routing exactly.
            self._ingest(
                [tuple(pair) for pair in record.get("documents", ())],
                tuple(ValueLinkSpec.from_dict(payload)
                      for payload in record.get("value_links", ())),
            )

    def _apply_covered_batch(self, record, base):
        """Re-apply a manifest-covered batch to shards whose files missed it.

        The manifest's document table already lists the batch's
        documents (so neither ``self._docs`` nor ``self.value_links``
        changes here -- the manifest meta carries the merged specs),
        but any shard whose ``shard_doc_bases`` watermark is at or
        below ``base`` restored from a file written *before* the batch.
        Those shards get their missing documents back -- routed by the
        assignment map, never by partitioner arithmetic, so batches
        logged under an older routing epoch land exactly where the
        table says.  A stale shard that receives no documents still
        saw the corpus-wide ``df``/``N`` move under its persisted
        streams, so it is version-bumped (deferred slots record the
        bump for materialization).
        """
        pairs = [tuple(pair) for pair in record.get("documents", ())]
        specs = tuple(ValueLinkSpec.from_dict(payload)
                      for payload in record.get("value_links", ()))
        stale = [index for index, mark in enumerate(self._shard_doc_bases)
                 if base >= mark]
        if not stale:
            return
        routed = {index: [] for index in stale}
        for offset, pair in enumerate(pairs):
            row = self._docs[base + offset]
            if row[1] in routed:
                routed[row[1]].append((pair, row))
        for index in stale:
            slot = self._slots[index]
            shard_pairs = routed[index]
            if not shard_pairs and not specs:
                if slot.loaded:
                    slot.get().graph.bump_version()
                else:
                    slot.pending_bumps += 1
                continue
            added = slot.get().add_documents(
                [pair for pair, _row in shard_pairs],
                value_links=specs or None,
            )
            for document, (pair, row) in zip(added, shard_pairs):
                if len(document.nodes) != row[2]:
                    raise SnapshotError(
                        f"replayed document {pair[0]!r} rebuilt with "
                        f"{len(document.nodes)} nodes but the manifest "
                        f"records {row[2]}; write-ahead log and "
                        f"manifest disagree"
                    )
        self.stats.invalidate()

    @classmethod
    def load(cls, directory, lazy=True, partitioner=None,
             shared_payload=False):
        """Restore a sharded collection saved by :meth:`save`.

        With ``lazy=True`` (the default) only the manifest is read;
        each shard snapshot is restored on first use -- the topology
        (document/node counts, id translation) is fully available
        before any shard file is opened.  ``partitioner`` overrides the
        manifest's routing policy; required when the collection was
        built with a custom (non-serializable) partitioner and
        :meth:`add_documents` will be called.

        ``shared_payload=True`` attaches each shard's column sidecar
        from the shared-memory segments a publisher process created
        with :func:`publish_shared_payload` (reading the mapping file
        next to the manifest), so N loading processes share one
        physical copy of the columns instead of N private ones.
        Raises :class:`SnapshotError` when no mapping has been
        published.

        When a write-ahead log sits beside the manifest (``wal.log``,
        see :meth:`enable_durability`), its acknowledged batches are
        replayed on top of the restored shards and durability stays
        attached; a torn final record is truncated with a warning.
        """
        manifest = read_sharded_manifest(directory)
        meta = manifest.get("meta", {})
        if partitioner is not None:
            route, partitioner_name = resolve_partitioner(partitioner)
        else:
            stored = meta.get("partitioner", "hash")
            route = PARTITIONERS.get(stored)
            partitioner_name = stored
            if route is None and stored != "custom":
                # "custom" is the documented marker for a
                # non-serializable routing function (searches work,
                # ingestion needs the function back); any *other*
                # unknown name means a newer writer or a damaged
                # manifest -- fail here, not later in add_documents.
                raise SnapshotError(
                    f"{directory}: manifest names unknown partitioner "
                    f"{stored!r} (known: {sorted(PARTITIONERS)}, or "
                    f"'custom'); pass partitioner= to override"
                )
        value_links = tuple(
            ValueLinkSpec.from_dict(record)
            for record in meta.get("value_links", ())
        )
        slots = [
            _ShardSlot(path=os.path.join(directory, shard_file))
            for shard_file in manifest["shard_files"]
        ]
        if shared_payload:
            mapping = read_shared_payload(directory)
            if mapping is None:
                raise SnapshotError(
                    f"{directory}: no shared payload published (run "
                    "publish_shared_payload first)"
                )
            for slot, shard_file in zip(slots, manifest["shard_files"]):
                entry = mapping.get(shard_file)
                if entry is not None:
                    slot.shared_segment = entry[0]
        # The manifest's per-shard watermarks say which write-ahead
        # batches each shard file absorbed (a topology commit rewrites
        # only the affected shards, so the marks can differ per shard);
        # replay and single-shard recovery both route from them.
        system = cls(
            slots, manifest["documents"],
            meta.get("collection", "collection"), value_links,
            route, partitioner_name,
            routing_epoch=manifest.get("routing_epoch", 0),
            shard_doc_bases=manifest.get("shard_doc_bases"),
        )
        obs_payload = read_obs_state(directory)
        if obs_payload is not None:
            from repro.obs.registry import StatsRegistry

            system.obs = StatsRegistry.from_dict(obs_payload)
        wal_path = sharded_wal_file_name(directory)
        if os.path.exists(wal_path):
            system._replay_wal_records(*replay_wal(wal_path))
        # Durability is attached whether or not a log existed: batches
        # added to the restored collection are logged in the directory.
        system.enable_durability(directory)
        if not lazy:
            for slot in slots:
                slot.get()
        return system

    # -- topology operations --------------------------------------------------

    def split(self, shard_id):
        """Split shard ``shard_id`` into two; see :func:`.topology.split`."""
        from repro.shard.topology import split

        return split(self, shard_id)

    def merge(self, a, b):
        """Merge two shards into one; see :func:`.topology.merge`."""
        from repro.shard.topology import merge

        return merge(self, a, b)

    def rebalance(self, plan):
        """Move documents between shards; see :func:`.topology.rebalance`."""
        from repro.shard.topology import rebalance

        return rebalance(self, plan)

    def propose_rebalance(self, metric="documents"):
        """Draft a plan equalizing ``metric``; see
        :func:`.topology.propose_rebalance`."""
        from repro.shard.topology import propose_rebalance

        return propose_rebalance(self, metric=metric)

    def __repr__(self):
        loaded = sum(1 for slot in self._slots if slot.loaded)
        return (
            f"ShardedSeda({self.name!r}, shards={len(self._slots)} "
            f"({loaded} loaded), docs={len(self._docs)}, "
            f"nodes={self._node_count})"
        )


def read_shared_payload(directory):
    """The published shard-file -> segment mapping, or ``None``.

    Returns the ``segments`` table of a valid ``shared_payload.json``
    (``{shard_file: [segment_name, byte_length]}``); ``None`` when the
    file is absent, unreadable, or from an unknown format/version --
    the mapping is advisory, so damage degrades to "not published".
    """
    path = os.path.join(directory, SHARED_PAYLOAD_FILE)
    try:
        with open(path, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
    except (OSError, ValueError):
        return None
    if (
        not isinstance(payload, dict)
        or payload.get("format") != SHARED_PAYLOAD_FORMAT
        or payload.get("version") != SHARED_PAYLOAD_VERSION
        or not isinstance(payload.get("segments"), dict)
    ):
        return None
    return payload["segments"]


class SharedPayload:
    """Publisher-side handle over one directory's shared segments.

    Created by :func:`publish_shared_payload`; the publisher keeps it
    referenced while worker processes attach (``ShardedSeda.load(...,
    shared_payload=True)``) and calls :meth:`unlink` when the fleet is
    done -- segment lifetime is the publisher's alone, attachers only
    ever map and close (see :meth:`Sidecar.from_shared_memory`).
    """

    __slots__ = ("directory", "segments", "_handles")

    def __init__(self, directory, handles, segments):
        self.directory = directory
        self.segments = segments
        self._handles = handles

    @property
    def segment_names(self):
        """Shard file -> shared-memory segment name, in manifest order."""
        return {shard: entry[0] for shard, entry in self.segments.items()}

    def close(self):
        """Detach this process's views (the segments stay published)."""
        for segment in self._handles:
            try:
                segment.close()
            except BufferError:  # pragma: no cover - views still exported
                pass

    def unlink(self):
        """Tear the payload down: close, unlink every segment, and
        remove the mapping file so later loads fail fast instead of
        attaching names that no longer exist."""
        self.close()
        for segment in self._handles:
            try:
                segment.unlink()
            except FileNotFoundError:  # pragma: no cover - already gone
                pass
        self._handles = []
        try:
            os.remove(os.path.join(self.directory, SHARED_PAYLOAD_FILE))
        except OSError:
            pass

    def __repr__(self):
        return (
            f"SharedPayload({self.directory!r}, "
            f"segments={len(self.segments)})"
        )


def publish_shared_payload(directory):
    """Load every shard sidecar into shared memory and publish the map.

    Reads the sharded manifest, copies each shard's ``.cols`` sidecar
    into its own ``multiprocessing.shared_memory`` segment, and writes
    ``shared_payload.json`` next to the manifest (atomically, tmp +
    rename) so any number of later ``ShardedSeda.load(directory,
    shared_payload=True)`` processes attach the same physical copy of
    the columns instead of mapping private ones.

    Shards without a sidecar (legacy formats, column-free shards) are
    simply left out of the mapping; loaders fall back to the snapshot's
    own file for those.  Returns a :class:`SharedPayload` -- the caller
    owns the segments and must keep the handle alive while workers run,
    then :meth:`SharedPayload.unlink` them.
    """
    manifest = read_sharded_manifest(directory)
    token = secrets.token_hex(4)
    handles = []
    segments = {}
    try:
        for index, shard_file in enumerate(manifest["shard_files"]):
            sidecar_path = sidecar_file_name(
                os.path.join(directory, shard_file)
            )
            try:
                with open(sidecar_path, "rb") as handle:
                    data = handle.read()
            except FileNotFoundError:
                continue
            name = f"seda-{token}-{index:04d}"
            handles.append(publish_shared_memory(name, data))
            segments[shard_file] = [name, len(data)]
        payload = {
            "format": SHARED_PAYLOAD_FORMAT,
            "version": SHARED_PAYLOAD_VERSION,
            "segments": segments,
        }
        target = os.path.join(directory, SHARED_PAYLOAD_FILE)
        tmp_path = f"{target}.tmp"
        with open(tmp_path, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, sort_keys=True)
        os.replace(tmp_path, target)
    except BaseException:
        for segment in handles:
            try:
                segment.close()
                segment.unlink()
            except OSError:  # pragma: no cover - best-effort rollback
                pass
        raise
    return SharedPayload(directory, handles, segments)
