"""Concurrent scatter-gather serving over a sharded collection.

The sharded counterpart of
:class:`~repro.service.query_service.QueryService`, with the same
contract: batches execute concurrently, duplicate queries are computed
once, results come from a thread-safe LRU when the same normalized
query was served at the current topology version, and answers are
byte-identical to serving each query alone -- worker count and
scheduling never leak into results.

Threading model
---------------

* Each worker owns a **searcher group** -- one
  :class:`~repro.search.topk.TopKSearcher` per shard -- because
  searchers carry per-query mutable state.  A query checks a group out
  of a queue, scatters across its searchers sequentially (sharing one
  :class:`~repro.search.topk.SharedBound`, so later shards prune
  against earlier shards' k-th score), and returns the group.
* All groups share every shard's read structures the same way
  :class:`QueryService` workers do: the lead group is warmed once per
  topology version and the others adopt its caches
  (:meth:`TopKSearcher.share_read_caches`), plus each shard's impact
  stream store and the corpus-wide term statistics.
* Cache keys include the tuple of per-shard graph versions, so any
  mutation anywhere in the topology (``ShardedSeda.add_documents``
  bumps every shard) expires stale merged results.
"""

import queue
import threading
import time

from repro.obs.fingerprint import query_fingerprint
from repro.query.term import Query
from repro.search.topk import TopKSearcher
from repro.service.cache import ResultCache
from repro.service.query_service import execute_deduplicated
from repro.service.stats import ShardedBatchStats, ShardedQueryStats


class ShardedQueryService:
    """Concurrent, caching scatter-gather execution over shards."""

    def __init__(self, sharded, workers=4, cache_size=256, registry=None):
        if workers <= 0:
            raise ValueError("workers must be positive")
        self.sharded = sharded
        self.workers = workers
        self.cache = ResultCache(cache_size)
        #: Optional retained :class:`~repro.obs.registry.StatsRegistry`
        #: (``None`` = zero observability overhead).  Sharded stats
        #: carry a per-shard breakdown, so the registry additionally
        #: accumulates per-shard skew counters per fingerprint.
        self.registry = registry
        shards = sharded.shards  # forces lazy shards: serving needs all
        self._group_pool = [
            [
                TopKSearcher(shard.matcher, shard.scoring,
                             streams=shard.streams)
                for shard in shards
            ]
            for _ in range(workers)
        ]
        self._warm_lock = threading.Lock()
        self._warm_versions = None
        self._refresh_shared_caches()
        self._groups = queue.SimpleQueue()
        for group in self._group_pool:
            self._groups.put(group)

    def _versions(self):
        """Topology version: graph versions + recovery + routing epochs.

        The recovery epoch is folded in so a crashed-shard recovery
        (which swaps the underlying shard objects without necessarily
        changing any graph version) still expires cached results and
        triggers a searcher-group rebuild; the routing epoch so a
        topology operation (split/merge/rebalance -- which can change
        the shard *count*) does the same.
        """
        return (
            tuple(shard.graph.version for shard in self.sharded.shards),
            getattr(self.sharded, "recovery_epoch", 0),
            getattr(self.sharded, "routing_epoch", 0),
        )

    def _refresh_shared_caches(self):
        """Warm the lead group, share its caches, once per topology
        version (same discipline as ``QueryService``)."""
        versions = self._versions()
        if self._warm_versions == versions:
            return
        with self._warm_lock:
            if self._warm_versions == versions:
                return
            # A recovered shard is a *new* system object; any group
            # searcher still pointing at the old one is rebuilt before
            # warming (identity check: cheap, and exact).  A topology
            # operation can change the shard *count*: the groups are
            # resized in place -- the checkout queue holds these same
            # list objects, so replacing them would serve stale groups.
            shards = self.sharded.shards
            for group in self._group_pool:
                if len(group) != len(shards):
                    group[:] = [
                        TopKSearcher(shard.matcher, shard.scoring,
                                     streams=shard.streams)
                        for shard in shards
                    ]
                    continue
                for index, shard in enumerate(shards):
                    if group[index].matcher is not shard.matcher:
                        group[index] = TopKSearcher(
                            shard.matcher, shard.scoring,
                            streams=shard.streams,
                        )
            lead = self._group_pool[0]
            for searcher in lead:
                searcher.warm()
            for group in self._group_pool[1:]:
                for searcher, lead_searcher in zip(group, lead):
                    searcher.share_read_caches(lead_searcher)
            self._warm_versions = versions

    # -- single queries -------------------------------------------------------

    def execute(self, query, k=10):
        """Serve one query; ``(merged results, ShardedQueryStats)``."""
        query = self._as_query(query)
        self._refresh_shared_caches()
        key = (query.cache_key(), k, self._versions())
        start = time.perf_counter()
        cached = self.cache.get(key)
        if cached is not None:
            stats = ShardedQueryStats(
                key, k, time.perf_counter() - start, cache_hit=True
            )
            results = list(cached)
        else:
            results, stats = self._compute(query, k, key, start)
        if self.registry is not None:
            self.registry.record(query_fingerprint(query, k), stats)
        return results, stats

    def _compute(self, query, k, key, start):
        group = self._groups.get()
        try:
            gathered, per_shard = self.sharded.scatter(group, query, k)
        finally:
            self._groups.put(group)
        merged = self.sharded._merge(gathered, k)
        failed = [
            {"shard": entry["shard"], "error": entry["failed"]}
            for entry in per_shard if entry.get("failed")
        ]
        if failed:
            # Partial answers are never cached: a later query must not
            # be served an incomplete merge after the shard recovers.
            stored = merged
        else:
            stored = self.cache.put(key, merged)
        stats = ShardedQueryStats(
            key, k, time.perf_counter() - start, cache_hit=False,
            sorted_accesses=sum(e["sorted_accesses"] for e in per_shard),
            tuples_scored=sum(e["tuples_scored"] for e in per_shard),
            pruned=sum(e["pruned"] for e in per_shard),
            early_stop=all(e["early_stop"] for e in per_shard),
            per_shard=per_shard,
            failed_shards=failed,
        )
        return list(stored), stats

    # -- batches --------------------------------------------------------------

    def execute_batch(self, queries, k=10):
        """Serve a batch concurrently; ``(results, ShardedBatchStats)``.

        Results are in input order; duplicates within the batch are
        computed once and the extra occurrences reported as cache hits,
        exactly like the unsharded service.
        """
        parsed = [self._as_query(query) for query in queries]
        self._refresh_shared_caches()
        versions = self._versions()
        keys = [(query.cache_key(), k, versions) for query in parsed]
        counters_before = self._scoring_counters()
        start = time.perf_counter()
        results, per_query = execute_deduplicated(
            list(zip(parsed, keys)), k, self.workers,
            lambda query, size: self.execute(query, k=size),
            self._duplicate_stats(parsed, keys, k),
        )
        wall = time.perf_counter() - start
        counters_after = self._scoring_counters()
        scoring_caches = {
            name: counters_after[name] - counters_before[name]
            for name in counters_after
        }
        return results, ShardedBatchStats(
            per_query, wall, self.workers, scoring_caches=scoring_caches
        )

    def _duplicate_stats(self, parsed, keys, k):
        """Duplicate-stats callback that also records to the registry
        (duplicates never pass through :meth:`execute`)."""
        by_key = {}
        for query, key in zip(parsed, keys):
            by_key.setdefault(key, query)

        def duplicate_stats(key):
            stats = ShardedQueryStats(key, k, 0.0, cache_hit=True)
            if self.registry is not None:
                self.registry.record(
                    query_fingerprint(by_key[key], k), stats
                )
            return stats

        return duplicate_stats

    def _scoring_counters(self):
        """Shared-cache counters summed across every shard."""
        totals = {}
        for shard in self.sharded.shards:
            for source in (shard.streams.counters(),
                           shard.scoring.counters()):
                for name, value in source.items():
                    totals[name] = totals.get(name, 0) + value
        return totals

    # -- maintenance ----------------------------------------------------------

    def invalidate(self):
        """Drop all cached merged results (after ingestion)."""
        self.cache.invalidate()

    @staticmethod
    def _as_query(query):
        if isinstance(query, Query):
            return query
        return Query.parse(query)

    def __repr__(self):
        return (
            f"ShardedQueryService(shards={self.sharded.shard_count}, "
            f"workers={self.workers}, cache={self.cache!r})"
        )
