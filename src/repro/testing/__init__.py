"""Test-support utilities shipped with the library.

:mod:`repro.testing.faults` is the deterministic fault-injection
harness the durability tests drive: it wraps the storage layer's crash
seams (:mod:`repro.storage.durable`, the write-ahead log's record
writer) to simulate I/O errors, torn writes, and kill -9 at exact
operation counts.  Shipping it inside the package (rather than under
``tests/``) lets the crash-recovery subprocess harness import it, and
lets downstream users fault-test their own deployment glue.
"""

from repro.testing.faults import (
    FaultInjector,
    KillPoint,
    install_kill_switch,
    uninstall_kill_switch,
)

__all__ = [
    "FaultInjector",
    "KillPoint",
    "install_kill_switch",
    "uninstall_kill_switch",
]
