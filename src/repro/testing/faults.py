"""Deterministic fault injection for the storage layer's crash seams.

Every durable writer funnels its power-loss-sensitive operations
through :mod:`repro.storage.durable` and the write-ahead log's record
writer (:func:`repro.storage.wal._write_record_bytes`).  This module
monkeypatches those seams with counting wrappers, so tests can assert
recovery behaviour at *exact* fault points instead of hoping a random
sleep lands somewhere interesting:

* :class:`FaultInjector` -- raise an ``OSError`` on the N-th seam
  operation (simulated I/O error), or cut a WAL record write short
  after a byte prefix (simulated torn write / power cut mid-append).
* :func:`install_kill_switch` -- ``SIGKILL`` the current process the
  moment the N-th seam operation *begins*.  Used by the subprocess
  crash harness (``tests/test_crash_recovery.py``): the parent sweeps
  N upward until the writer survives, proving recovery lands on a
  consistent state no matter where the crash hits.

Seam names (`FaultInjector.SEAMS`): ``fsync_file``,
``fsync_directory``, ``replace``, ``wal_write`` -- the operation
counter is shared across all of them, in call order, so a kill point
``n`` means "die at the n-th durable operation of any kind".

Everything restores cleanly: both the injector (a context manager) and
the kill switch's :func:`uninstall_kill_switch` put the original
functions back, and injection state is process-local -- no globals
survive a ``with`` block.

Multi-process use
-----------------

Both tools patch *this process's* seams only -- monkeypatching never
crosses a ``fork``/``exec`` boundary, so arming an injector in a test
process does nothing to a server subprocess.  To fault a subprocess,
arm the switch *inside it*:

* A writer child you control (the classic crash harness) imports and
  calls :func:`install_kill_switch` itself before its workload --
  see the ``CHILD`` script in ``tests/test_crash_recovery.py``.
* A process you start through an entry point (``repro serve``) is
  armed through the environment: export ``REPRO_KILL_SWITCH=n`` and
  the entry point's :func:`maybe_install_kill_switch_from_env` call
  installs the switch at operation ``n`` in *that* process.  The
  variable is read once at startup; an unset or empty variable is a
  no-op, so production invocations are unaffected.  The serving crash
  sweep (``tests/test_server_crash.py``) SIGKILLs a live server
  mid-ingest exactly this way.
"""

import os
import signal

#: Environment variable arming the kill switch across an exec boundary
#: (``REPRO_KILL_SWITCH=n`` -> die at the n-th durable seam operation).
KILL_SWITCH_ENV = "REPRO_KILL_SWITCH"

from repro.storage import durable, wal


class KillPoint(RuntimeError):
    """Raised instead of dying when a kill switch runs in dry-run mode."""


class _SeamPatch:
    """One patched seam: counts calls, delegates or faults."""

    __slots__ = ("owner", "module", "name", "original", "seam_name")

    def __init__(self, owner, module, name):
        self.owner = owner
        self.module = module
        self.name = name
        self.original = getattr(module, name)
        self.seam_name = name

    def install(self):
        patch = self

        def wrapper(*args, **kwargs):
            return patch.owner._enter(patch, args, kwargs)

        setattr(self.module, self.name, wrapper)

    def uninstall(self):
        setattr(self.module, self.name, self.original)


class FaultInjector:
    """Deterministically fault the N-th durable storage operation.

    Use as a context manager::

        with FaultInjector(fail_at=3) as faults:
            system.add_documents(batch)   # 3rd fsync/replace/write dies
        assert faults.operations >= 3

    ``fail_at`` raises ``OSError`` when the (1-based) global operation
    counter reaches that value; ``fail_on`` restricts the fault to one
    seam name.  ``torn_at``/``torn_bytes`` instead truncate a WAL
    record write: the first ``torn_bytes`` bytes are written, the rest
    are dropped, and ``OSError`` raises -- exactly the on-disk state a
    power cut mid-``write`` leaves behind.  A single injector arms one
    fault; re-enter a fresh one per scenario.
    """

    #: ``(module, attribute)`` per seam, keyed by seam name.
    SEAMS = {
        "fsync_file": (durable, "fsync_file"),
        "fsync_directory": (durable, "fsync_directory"),
        "replace": (durable, "replace"),
        "wal_write": (wal, "_write_record_bytes"),
    }

    def __init__(self, fail_at=None, fail_on=None, torn_at=None,
                 torn_bytes=0):
        if fail_on is not None and fail_on not in self.SEAMS:
            raise ValueError(
                f"unknown seam {fail_on!r} (known: {sorted(self.SEAMS)})"
            )
        self.fail_at = fail_at
        self.fail_on = fail_on
        self.torn_at = torn_at
        self.torn_bytes = torn_bytes
        #: Global (1-based) count of seam operations observed so far.
        self.operations = 0
        #: Count per seam name, for assertions on coverage.
        self.per_seam = {name: 0 for name in self.SEAMS}
        self._patches = []

    # -- context management ---------------------------------------------------

    def __enter__(self):
        for name, (module, attribute) in self.SEAMS.items():
            patch = _SeamPatch(self, module, attribute)
            patch.seam_name = name  # noqa: B010 - plain annotation
            self._patches.append(patch)
            patch.install()
        return self

    def __exit__(self, *exc_info):
        while self._patches:
            self._patches.pop().uninstall()
        return False

    # -- seam dispatch --------------------------------------------------------

    def _enter(self, patch, args, kwargs):
        seam = patch.seam_name
        self.operations += 1
        self.per_seam[seam] += 1
        if self.torn_at is not None and seam == "wal_write" \
                and self.operations >= self.torn_at:
            handle, data = args
            patch.original(handle, data[:self.torn_bytes])
            handle.flush()
            os.fsync(handle.fileno())
            raise OSError(
                f"injected torn write at operation {self.operations} "
                f"({self.torn_bytes}/{len(data)} bytes reached disk)"
            )
        if self.fail_at is not None and self.operations >= self.fail_at \
                and (self.fail_on is None or self.fail_on == seam):
            raise OSError(
                f"injected I/O error at operation {self.operations} "
                f"(seam {seam})"
            )
        return patch.original(*args, **kwargs)


# -- kill switch (subprocess crash harness) -----------------------------------

_kill_state = {"installed": None}


def install_kill_switch(operations, dry_run=False):
    """Die (``SIGKILL``) when the N-th durable seam operation begins.

    The crash harness's weapon: a writer subprocess installs the switch
    with ``operations=n`` and performs its workload; the n-th
    fsync/replace/WAL write never returns -- the process is gone
    mid-operation, exactly like a power cut.  The parent then asserts
    recovery from whatever hit the disk.  ``dry_run=True`` raises
    :class:`KillPoint` instead of dying (for testing the harness
    itself).  Returns a state dict whose ``"operations"`` entry counts
    seam calls so far; call :func:`uninstall_kill_switch` to restore
    the seams (a killed process obviously never does).
    """
    uninstall_kill_switch()
    state = {"operations": 0, "limit": operations, "dry_run": dry_run,
             "originals": []}

    def make_wrapper(original):
        def wrapper(*args, **kwargs):
            state["operations"] += 1
            if state["operations"] >= state["limit"]:
                if state["dry_run"]:
                    raise KillPoint(
                        f"kill point at operation {state['operations']}"
                    )
                os.kill(os.getpid(), signal.SIGKILL)
            return original(*args, **kwargs)

        return wrapper

    for module, attribute in FaultInjector.SEAMS.values():
        original = getattr(module, attribute)
        state["originals"].append((module, attribute, original))
        setattr(module, attribute, make_wrapper(original))
    _kill_state["installed"] = state
    return state


def uninstall_kill_switch():
    """Restore the seams patched by :func:`install_kill_switch`."""
    state = _kill_state["installed"]
    if state is None:
        return
    for module, attribute, original in state["originals"]:
        setattr(module, attribute, original)
    _kill_state["installed"] = None


def maybe_install_kill_switch_from_env(environ=None):
    """Arm the kill switch from ``REPRO_KILL_SWITCH``, if set.

    The cross-process arming seam: a parent test exports
    ``REPRO_KILL_SWITCH=n`` and execs an entry point (``repro
    serve``); the entry point calls this once at startup and the n-th
    durable operation of the child SIGKILLs it mid-operation.  Returns
    the installed state dict, or ``None`` when the variable is unset,
    empty, or not a positive integer (never raises -- a stray value
    in a production environment must not take the server down at
    boot; dying is strictly the armed switch's job).
    """
    value = (environ if environ is not None else os.environ).get(
        KILL_SWITCH_ENV, ""
    ).strip()
    if not value:
        return None
    try:
        operations = int(value)
    except ValueError:
        return None
    if operations < 1:
        return None
    return install_kill_switch(operations)
