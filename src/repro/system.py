"""The SEDA system facade: Search, Explore, Discover, Analyze.

Wires every component of Figure 4 together and drives the Figure 6
control flow::

    seda = Seda.from_documents(docs, value_links=links)
    session = seda.search([("*", '"United States"'),
                           ("trade_country", "*"),
                           ("percentage", "*")], k=10)
    session.context_summary          # Section 5 panel
    session = session.refine_contexts({0: ["/country"], ...})
    session.connection_summary       # Section 6 panel
    session = session.refine_connections([...])
    table = session.complete_results()          # Section 7
    schema = session.build_cube(table)           # star schema
    engine = session.olap(schema)                # analysis

Each ``SedaSession`` is immutable; refinements return new sessions, so
the exploration history stays inspectable (the GUI's back button).
"""

import os
import warnings

from repro.compact.trie import PathTrie
from repro.cube.augment import Augmenter
from repro.cube.extract import TableExtractor
from repro.cube.matching import ResultMatcher
from repro.cube.registry import Registry
from repro.index.builder import IndexBuilder
from repro.index.inverted import InvertedIndex
from repro.index.path_index import PathIndex
from repro.index.streams import ImpactStreamStore
from repro.metrics import SessionEffort
from repro.model.collection import DocumentCollection
from repro.model.graph import DataGraph
from repro.model.links import LinkDiscoverer, ValueLinkSpec
from repro.olap.engine import OLAPEngine
from repro.query.matcher import TermMatcher
from repro.query.term import Query
from repro.search.scoring import ScoringModel
from repro.search.topk import TopKSearcher
from repro.service.query_service import QueryService
from repro.storage.node_store import NodeStore
from repro.storage.snapshot import SIDECAR_KEY, read_snapshot, write_snapshot
from repro.storage.wal import WriteAheadLog, replay_wal, wal_file_name
from repro.summaries.connection import ConnectionSummaryGenerator
from repro.summaries.context import ContextSummaryGenerator
from repro.summaries.dataguide import DataguideBuilder, DataguideSet
from repro.text import Analyzer
from repro.twig.complete import CompleteResultGenerator


def _normalize_documents(documents):
    """``from_documents``-style inputs as ``(name_or_None, xml_text)``.

    Ingestion normalizes *before* anything mutates so the write-ahead
    log records exactly what will be applied -- element trees are
    serialized to text (the xmlio writer/parser pair round-trips), and
    replay re-ingests the same bytes the original call did.
    """
    from repro.xmlio.writer import serialize

    pairs = []
    for document in documents:
        if isinstance(document, tuple):
            doc_name, source = document
        else:
            doc_name, source = None, document
        if not isinstance(source, str):
            source = serialize(source)
        pairs.append((doc_name, source))
    return pairs


class Seda:
    """One SEDA instance over a document collection."""

    def __init__(self, collection, value_links=(), dataguide_threshold=0.4,
                 analyzer=None, max_hops=12, compact_indexes=True):
        graph = DataGraph(collection)
        discoverer = LinkDiscoverer(graph)
        discoverer.discover_all(value_specs=value_links)

        # One shared path trie: the path index and every dataguide store
        # paths as small int ids over a single interned label table.
        trie = PathTrie()
        builder = IndexBuilder(collection, analyzer=analyzer, trie=trie,
                               compact=compact_indexes)
        inverted, path_index = builder.build()
        node_store = NodeStore(collection)
        dataguide_builder = DataguideBuilder(dataguide_threshold, trie=trie)
        dataguides = dataguide_builder.build(collection=collection, graph=graph)
        self._wire(
            collection=collection, graph=graph, builder=builder,
            inverted=inverted, path_index=path_index, node_store=node_store,
            dataguide_builder=dataguide_builder, dataguides=dataguides,
            registry=Registry(), value_links=value_links, max_hops=max_hops,
        )

    def _wire(self, *, collection, graph, builder, inverted, path_index,
              node_store, dataguide_builder, dataguides, registry,
              value_links, max_hops, streams=None):
        """Attach fully built components (shared by ``__init__``/``load``)."""
        self.collection = collection
        self.graph = graph
        self._builder = builder
        self.analyzer = builder.analyzer
        self.inverted = inverted
        self.path_index = path_index
        self.node_store = node_store
        self._dataguide_builder = dataguide_builder
        self.dataguides = dataguides
        self.registry = registry
        self.value_links = tuple(value_links)
        self.max_hops = max_hops
        self.matcher = TermMatcher(collection, inverted, path_index, node_store)
        self.scoring = ScoringModel(
            collection, inverted, graph, max_hops=max_hops
        )
        # One impact-stream store per system: the facade's searcher, any
        # bare searchers built against this system, and every query
        # service worker share the same materialized per-term streams.
        self.streams = streams if streams is not None else ImpactStreamStore()
        self.topk = TopKSearcher(self.matcher, self.scoring,
                                 streams=self.streams)
        self._service = None  # created lazily by query_service()
        self.obs = None  # StatsRegistry; enable_observability() attaches one
        self._wal = None  # WriteAheadLog; enable_durability() attaches one
        self._wal_seq = 0  # batches ever acknowledged; stamps WAL records
        self.context_generator = ContextSummaryGenerator(self.matcher)
        self._refresh_generators()

    def _refresh_generators(self):
        """(Re)create the generators that capture mutable components."""
        self.connection_generator = ConnectionSummaryGenerator(
            self.collection, self.graph, self.dataguides,
            max_hops=self.max_hops,
        )
        self.complete_generator = CompleteResultGenerator(
            self.collection, self.graph, self.node_store, self.matcher,
            max_hops=self.max_hops,
        )

    # -- construction ---------------------------------------------------------

    @classmethod
    def from_documents(cls, documents, value_links=(), name="collection",
                       shards=None, **kwargs):
        """Build a SEDA instance from ``(name, xml-or-element)`` pairs
        or bare XML strings / elements.

        Any explicit ``shards=N`` (N >= 1; config-driven callers may
        legitimately land on 1) routes to the horizontally partitioned
        system instead: the documents are hash-partitioned across N
        independent shards, indexes build in parallel, and the returned
        :class:`~repro.shard.ShardedSeda` answers ``search`` /
        ``search_many`` by scatter-gather with results byte-identical
        to this unsharded build -- *provided no discovered link edge
        crosses shards*.  The built-in partitioners route by document
        name without inspecting content, so corpora whose
        IDREF/XLink/``value_links`` relationships span documents need
        a ``partitioner`` that co-locates each linked group, or
        cross-document tuples are silently lost.  See
        :mod:`repro.shard` for the full invariant set.
        """
        if shards is not None:
            from repro.shard import ShardedSeda

            return ShardedSeda.from_documents(
                documents, shards=shards, value_links=value_links,
                name=name, **kwargs,
            )
        collection = DocumentCollection(name=name)
        for document in documents:
            if isinstance(document, tuple):
                doc_name, source = document
                collection.add_document(source, name=doc_name)
            else:
                collection.add_document(document)
        return cls(collection, value_links=value_links, **kwargs)

    # -- incremental ingestion ---------------------------------------------------

    def add_documents(self, documents, value_links=None):
        """Ingest documents into the live system without a full rebuild.

        ``documents`` takes the same forms as :meth:`from_documents`.
        ``value_links`` defaults to the specs the system was built with;
        pass a sequence to extend them.  Each component is extended
        incrementally: the index builder picks up only the new
        documents, link discovery skips already-present edges, the new
        dataguides merge into the mined set, and search caches keyed on
        graph size invalidate automatically.
        """
        pairs = _normalize_documents(documents)
        specs = tuple(value_links) if value_links else ()
        if self._wal is not None:
            # Append-before-mutate: once this returns, the batch is
            # fsynced on disk.  A crash at any later point replays it
            # from the log; a crash before it never acknowledged.  The
            # sequence number makes replay idempotent: a snapshot stamps
            # the count of batches it absorbed, so a crash between
            # snapshot commit and log truncation cannot double-apply.
            self._wal.append({
                "op": "add_documents",
                "seq": self._wal_seq,
                "documents": [list(pair) for pair in pairs],
                "value_links": [spec.to_dict() for spec in specs],
            })
        self._wal_seq += 1
        return self._ingest(pairs, specs)

    def _ingest(self, pairs, specs):
        """Apply one normalized ``(name, xml)`` batch to every component.

        The mutation body of :meth:`add_documents`, shared with WAL
        replay (which must not re-log the batch it is replaying).
        """
        added = [
            self.collection.add_document(source, name=doc_name)
            for doc_name, source in pairs
        ]
        if specs:
            self.value_links = self.value_links + tuple(specs)
        discoverer = LinkDiscoverer(self.graph, skip_existing=True)
        discoverer.discover_all(value_specs=self.value_links)
        self._builder.build()  # incremental: only the documents added above
        self.node_store.refresh()
        for document in added:
            self._dataguide_builder.add_document(document)
        self.dataguides = self._dataguide_builder.build(graph=self.graph)
        self._refresh_generators()
        # New documents change query answers even when link discovery
        # added no edges (the implicit tree edges grew): bump the graph
        # version so every version-keyed cache -- document reachability,
        # the per-document edge index, and cached query results -- is
        # invalidated, and eagerly drop the result cache.
        self.graph.bump_version()
        if self._service is not None:
            self._service.invalidate()
        return added

    # -- snapshots -------------------------------------------------------------

    def snapshot_payload(self):
        """The system's serialized form: a ``(meta, records)`` pair.

        This is everything :meth:`save` writes, as plain
        JSON-compatible dictionaries -- also the unit a parallel shard
        build ships from worker process to parent (the payload pickles
        cheaply; live systems do not, they carry locks).
        """
        meta = {
            "collection": self.collection.name,
            "max_hops": self.max_hops,
            "dataguide_threshold": self.dataguides.threshold,
            "analyzer": self.analyzer.to_dict(),
            "value_links": [spec.to_dict() for spec in self.value_links],
            # Batches absorbed by this snapshot: replay skips write-ahead
            # records below this mark (crash between snapshot commit and
            # log truncation leaves absorbed records behind).
            "wal_seq": self._wal_seq,
        }
        records = {
            "collection": self.collection.to_dict(),
            "graph": self.graph.to_dict(),
            # Columnar index forms: the byte columns ride the snapshot's
            # binary sidecar instead of being exploded into JSON lists.
            "inverted": self.inverted.to_dict(columnar=True),
            "path_index": self.path_index.to_dict(columnar=True),
            "node_store": self.node_store.to_dict(),
            "dataguides": self.dataguides.to_dict(),
            "registry": self.registry.to_dict(),
            # Materialized impact streams for the current graph version:
            # a reloaded system answers its hot terms from these without
            # re-enumerating or re-scoring candidates.
            "streams": self.streams.to_dict(version=self.graph.version,
                                            columnar=True),
        }
        if self.obs is not None:
            # Retained query statistics survive the snapshot: a reloaded
            # service keeps its fingerprint history and slow-query log.
            records["obs"] = self.obs.to_dict()
        return meta, records

    def save(self, path, durable=True):
        """Persist the whole system to one versioned snapshot file.

        See :mod:`repro.storage.snapshot` for the format.  Everything a
        cold start would otherwise recompute -- parsed nodes, link
        edges, both indexes, the node store, dataguides, and the cube
        registry -- is written out, so :meth:`load` restores in one pass.

        ``durable=False`` writes the snapshot without touching
        write-ahead-log state -- for systems whose durability is owned
        elsewhere (a shard inside a :class:`~repro.shard.ShardedSeda`
        logs to the collection-level ``wal.log``, never per shard).
        """
        meta, records = self.snapshot_payload()
        write_snapshot(path, meta, records)
        if not durable:
            return
        # The snapshot now contains every batch the log holds; truncate
        # it only *after* the rename commit above, so a crash in
        # between merely replays batches the snapshot already absorbed
        # (re-adding the same documents to a snapshot that predates
        # them -- exactly the pre-save state).
        wal_path = wal_file_name(path)
        if self._wal is not None and self._wal.path == wal_path:
            self._wal.truncate()
        elif os.path.exists(wal_path):
            # A log paired with this snapshot path by convention but
            # not attached here is stale the moment the new snapshot
            # commits: replaying it would double-apply old batches.
            WriteAheadLog(wal_path).truncate()
        # A saved system is durable at that path from here on: every
        # later batch is logged beside the snapshot it extends.  (The
        # log file itself only appears on the first append.)
        self.enable_durability(path)

    @classmethod
    def load(cls, path, sidecar=None, durable=True):
        """Restore a system saved by :meth:`save`.

        Bypasses XML parsing, link discovery, index building, and
        dataguide mining entirely: every component is reconstructed
        from its serialized form.  ``sidecar`` substitutes an
        already-attached column buffer (e.g. a shared-memory segment)
        for the snapshot's own ``.cols`` file.

        When a write-ahead log sits beside the snapshot (``<path>.wal``,
        see :meth:`enable_durability`), every acknowledged batch in it
        is replayed on top of the restored snapshot and durability
        stays attached -- recovery after a crash lands on snapshot plus
        everything that was ever acknowledged.  A torn final record
        (crash mid-append) is truncated away with a warning; it was
        never acknowledged.  ``durable=False`` restores the snapshot
        alone -- no replay, no log attach (shard-internal loads).
        Raises
        :class:`~repro.storage.snapshot.SnapshotError` on incompatible,
        torn, or corrupt files.
        """
        meta, records = read_snapshot(path, sidecar=sidecar)
        try:
            system = cls.from_payload(meta, records)
        except (KeyError, TypeError, ValueError, AttributeError) as error:
            # Version-5 checksums catch corruption before we get here;
            # older snapshots can only fail structurally.  Either way a
            # broken file must surface as SnapshotError, never as a
            # bare reconstruction traceback.
            from repro.storage.snapshot import SnapshotError

            raise SnapshotError(
                f"{path}: snapshot records do not reconstruct a system "
                f"({type(error).__name__}: {error}); corrupt or "
                f"incompatible file"
            ) from error
        if not durable:
            # Pure snapshot restore: no replay, no log attach.  The
            # caller owns recovery (sharded collections replay their
            # own collection-level log across the shards).
            return system
        wal_path = wal_file_name(path)
        if os.path.exists(wal_path):
            system._replay_wal_records(*replay_wal(wal_path))
        # Durability is attached whether or not a log existed: batches
        # added to the restored system are logged beside its snapshot.
        system.enable_durability(path)
        return system

    def _replay_wal_records(self, wal_records, warning):
        """Apply replayed write-ahead batches; shared with shard recovery."""
        if warning is not None:
            warnings.warn(warning, stacklevel=3)
        for record in wal_records:
            op = record.get("op")
            if op != "add_documents":
                from repro.storage.wal import WALError

                raise WALError(
                    f"write-ahead log holds unknown operation {op!r}; "
                    f"written by a newer version?"
                )
            seq = record.get("seq")
            if seq is not None:
                if seq < self._wal_seq:
                    # The snapshot already absorbed this batch: the
                    # crash hit between its commit and the log
                    # truncation.  Replaying it would double-apply.
                    continue
                self._wal_seq = seq + 1
            else:
                self._wal_seq += 1  # legacy record without a sequence
            self._ingest(
                [tuple(pair) for pair in record.get("documents", ())],
                [ValueLinkSpec.from_dict(payload)
                 for payload in record.get("value_links", ())],
            )

    def enable_durability(self, snapshot_path):
        """Attach a write-ahead log beside the snapshot at ``snapshot_path``.

        Afterwards every :meth:`add_documents` batch is appended to
        ``<snapshot_path>.wal`` -- checksummed and fsynced -- *before*
        any index mutates, :meth:`save` to that path truncates the log
        once the snapshot commit absorbs its batches, and :meth:`load`
        replays it, so no acknowledged batch survives only in RAM.
        Idempotent for the same path; switching paths re-attaches.
        Returns the :class:`~repro.storage.wal.WriteAheadLog`.
        """
        wal_path = wal_file_name(snapshot_path)
        if self._wal is not None:
            if self._wal.path == wal_path:
                return self._wal
            self._wal.close()
        self._wal = WriteAheadLog(wal_path)
        return self._wal

    @classmethod
    def from_payload(cls, meta, records):
        """Reconstruct a system from a :meth:`snapshot_payload` pair."""
        analyzer = Analyzer.from_dict(meta["analyzer"])
        sidecar = records.get(SIDECAR_KEY)
        collection = DocumentCollection.from_dict(records["collection"])
        graph = DataGraph.from_dict(records["graph"], collection)
        inverted = InvertedIndex.from_dict(records["inverted"], analyzer,
                                           sidecar=sidecar)
        path_index = PathIndex.from_dict(records["path_index"], analyzer,
                                         sidecar=sidecar)
        node_store = NodeStore.from_dict(records["node_store"], collection)
        # The dataguides re-anchor in the path index's trie, so both
        # keep speaking one shared label table after a restore too.
        dataguides = DataguideSet.from_dict(records["dataguides"],
                                            trie=path_index.trie)
        registry = Registry.from_dict(records["registry"])
        builder = IndexBuilder(
            collection, analyzer=analyzer, inverted=inverted,
            paths=path_index, built_upto=len(collection.documents),
            compact=True,
        )
        value_links = tuple(
            ValueLinkSpec.from_dict(record)
            for record in meta.get("value_links", ())
        )
        streams = (
            ImpactStreamStore.from_dict(records["streams"], sidecar=sidecar)
            if "streams" in records
            else None  # version-1 snapshot: start with an empty store
        )
        system = cls.__new__(cls)
        system._wire(
            collection=collection, graph=graph, builder=builder,
            inverted=inverted, path_index=path_index, node_store=node_store,
            dataguide_builder=DataguideBuilder.from_set(dataguides),
            dataguides=dataguides, registry=registry,
            value_links=value_links, max_hops=meta["max_hops"],
            streams=streams,
        )
        if "obs" in records:
            from repro.obs.registry import StatsRegistry

            system.obs = StatsRegistry.from_dict(records["obs"])
        system._wal_seq = meta.get("wal_seq", 0)
        return system

    # -- introspection ------------------------------------------------------------

    def index_memory(self):
        """Per-index estimated resident memory (``repro info``).

        Cheap structural estimates -- table sizes and encoded column
        bytes -- not a heap profiler: the point is comparing the compact
        representations against what the legacy object layout would
        cost, and watching them as a corpus grows.
        """
        trie = self.path_index.trie
        labels = trie.labels
        return {
            "inverted": self.inverted.estimated_memory(),
            "path_index": self.path_index.estimated_memory(),
            "streams": self.streams.estimated_memory(),
            "labels": {
                "count": len(labels),
                "bytes": sum(len(label) for label in labels.to_list()),
            },
            "trie": {"nodes": trie.node_count, "paths": len(trie)},
        }

    # -- the entry point ----------------------------------------------------------

    def search(self, query, k=10):
        """Submit a query; returns a :class:`SedaSession`.

        ``query`` is a :class:`Query` or a list of ``(context, search)``
        pairs.
        """
        if not isinstance(query, Query):
            query = Query.parse(query)
        results = self.topk.search(query, k=k)
        return SedaSession(self, query, k, results, effort=SessionEffort())

    def query_service(self, workers=None, cache_size=None):
        """The concurrent serving facade over this system (lazy, kept).

        Repeated calls return the same :class:`QueryService` instance.
        ``workers``/``cache_size`` left ``None`` accept whatever the
        existing service uses (defaults 4/256 on first creation); an
        *explicitly* different configuration replaces the service,
        dropping its warm cache.
        """
        from repro.service.query_service import keep_or_replace_service

        self._service = keep_or_replace_service(
            self._service,
            lambda w, c: QueryService(self, workers=w, cache_size=c),
            workers, cache_size,
        )
        # The retained stats registry survives service replacement.
        self._service.registry = self.obs
        return self._service

    def enable_observability(self, slow_threshold=0.1, slow_log_size=128):
        """Attach a retained :class:`~repro.obs.registry.StatsRegistry`.

        Every query served through :meth:`query_service` /
        :meth:`search_many` afterwards is recorded under its normalized
        fingerprint; ``repro stats`` renders the accumulated registry
        and :meth:`save` persists it.  Idempotent: repeated calls keep
        the existing registry (and its history).  Returns the registry.
        """
        if self.obs is None:
            from repro.obs.registry import StatsRegistry

            self.obs = StatsRegistry(
                slow_threshold=slow_threshold, slow_log_size=slow_log_size
            )
        if self._service is not None:
            self._service.registry = self.obs
        return self.obs

    def search_many(self, queries, k=10, workers=None):
        """Serve a batch of queries concurrently; a list of sessions.

        Each element of ``queries`` takes the same forms as
        :meth:`search`; the returned :class:`SedaSession` list is in
        input order, with results identical to running :meth:`search`
        per query (the top-k unit is deterministic, duplicates are
        computed once, and repeats hit the service's result cache).
        """
        parsed = [
            query if isinstance(query, Query) else Query.parse(query)
            for query in queries
        ]
        service = self.query_service(workers=workers)
        results, _stats = service.execute_batch(parsed, k=k)
        return [
            SedaSession(self, query, k, result, effort=SessionEffort())
            for query, result in zip(parsed, results)
        ]


class SedaSession:
    """One step of the Figure 6 exploration loop."""

    def __init__(self, system, query, k, results, chosen_connections=None,
                 effort=None):
        self.system = system
        self.query = query
        self.k = k
        self.results = results
        self.chosen_connections = list(chosen_connections or [])
        # Effort tracking (a Section 8 effectiveness metric): refinement
        # steps share the tracker so a whole exploration is accounted.
        self.effort = effort if effort is not None else SessionEffort()
        self._context_summary = None
        self._connection_summary = None

    # -- summaries (computed lazily, cached per session) -----------------------

    @property
    def context_summary(self):
        if self._context_summary is None:
            self._context_summary = self.system.context_generator.generate(
                self.query
            )
        return self._context_summary

    @property
    def connection_summary(self):
        if self._connection_summary is None:
            self._connection_summary = (
                self.system.connection_generator.generate(
                    self.query, self.results
                )
            )
        return self._connection_summary

    # -- refinement (each returns a NEW session) ----------------------------------

    def refine_contexts(self, selections):
        """Restrict term contexts and re-run top-k (first feedback loop).

        ``selections`` maps term index -> list of chosen paths.
        """
        refined = self.system.context_generator.refine(self.query, selections)
        results = self.system.topk.search(refined, k=self.k)
        self.effort.record_search()
        self.effort.record_context_choice(
            sum(len(paths) for paths in selections.values())
        )
        return SedaSession(self.system, refined, self.k, results,
                          self.chosen_connections, effort=self.effort)

    def refine_connections(self, connections):
        """Select the relevant connections (second feedback loop).

        ``connections`` is a list of ``((i, j), Connection)`` pairs,
        typically picked from :attr:`connection_summary`.  The top-k
        results are filtered to tuples instantiating every selected
        connection.
        """
        system = self.system
        filtered = []
        for result in self.results:
            keep = True
            for (i, j), connection in connections:
                if not connection.matches_instance(
                    system.collection, system.graph,
                    result.node_ids[i], result.node_ids[j],
                    max_hops=system.max_hops,
                ):
                    keep = False
                    break
            if keep:
                filtered.append(result)
        self.effort.record_connection_choice(len(connections))
        return SedaSession(system, self.query, self.k, filtered, connections,
                          effort=self.effort)

    # -- complete results and cube construction --------------------------------------

    def term_paths(self):
        """Chosen (or unambiguous) context path per term, if determinable.

        A term has a determined path when its context is a single
        :class:`PathContext` or when all its top-k bindings share one
        path.  Raises otherwise -- the caller must refine first.
        """
        from repro.query.term import PathContext

        paths = {}
        for index, term in enumerate(self.query.terms):
            if isinstance(term.context, PathContext):
                paths[index] = term.context.path
                continue
            bound = {
                self.system.collection.node(result.node_ids[index]).path
                for result in self.results
            }
            if len(bound) == 1:
                paths[index] = bound.pop()
            else:
                raise ValueError(
                    f"term {index} is ambiguous across paths {sorted(bound)}; "
                    "refine contexts before requesting complete results"
                )
        return paths

    def complete_results(self, term_paths=None, connections=None):
        """Materialize the full R(q) (Section 7)."""
        if term_paths is None:
            term_paths = self.term_paths()
        if connections is None:
            connections = self.chosen_connections
        return self.system.complete_generator.generate(
            self.query, term_paths, connections
        )

    # -- cube pipeline ------------------------------------------------------------------

    def match_cube(self, result_table):
        """Step 1: match result columns against the registry."""
        return ResultMatcher(self.system.registry).match(result_table)

    def build_cube(self, result_table, facts=None, dimensions=None,
                   merge_facts=True):
        """Steps 1-3: match, augment, extract; returns a StarSchema.

        ``facts``/``dimensions`` override the automatic match (the
        user's manual adjustment); defaults are the matched sets Fq and
        Dq.
        """
        report = self.match_cube(result_table)
        if facts is None:
            facts = report.facts
        if dimensions is None:
            dimensions = report.dimensions
        augmenter = Augmenter(
            self.system.collection, self.system.node_store,
            self.system.registry,
        )
        augmented = augmenter.augment(result_table, facts, dimensions)
        final_dimensions = list(dimensions) + augmented.auto_dimensions
        extractor = TableExtractor(
            self.system.collection, self.system.node_store,
            self.system.registry,
        )
        return extractor.extract(
            augmented, facts, final_dimensions, merge_facts=merge_facts
        )

    @staticmethod
    def olap(star_schema):
        """An :class:`OLAPEngine` over the generated star schema."""
        return OLAPEngine(star_schema)
