"""Thread-safe LRU cache for top-k result lists.

Keys are ``(query_cache_key, k, graph_version)``: the normalized query
(see :meth:`repro.query.term.Query.cache_key`), the requested ``k``,
and the data-graph version the results were computed against.  Because
the graph version is part of the key, a mutation (``Seda.add_documents``
bumps :attr:`~repro.model.graph.DataGraph.version`) makes every
previously cached entry unreachable without a sweep; the LRU discipline
then ages the dead entries out.  :meth:`invalidate` additionally drops
everything eagerly, which ``Seda.add_documents`` uses to reclaim the
memory immediately.

Values are stored as tuples of :class:`~repro.search.result.ResultTuple`
-- immutable enough to hand to concurrent readers without copying.
"""

import collections
import threading


class ResultCache:
    """A bounded, thread-safe LRU map from cache keys to result tuples."""

    def __init__(self, max_entries=256):
        if max_entries <= 0:
            raise ValueError("max_entries must be positive")
        self.max_entries = max_entries
        self._entries = collections.OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0

    def get(self, key):
        """The cached result tuple for ``key``, or ``None``; counts the
        lookup as a hit or miss."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.misses += 1
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            return entry

    def put(self, key, results):
        """Store ``results`` under ``key``; returns the stored tuple."""
        stored = tuple(results)
        with self._lock:
            self._entries[key] = stored
            self._entries.move_to_end(key)
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)
        return stored

    def invalidate(self):
        """Drop every entry (hit/miss counters are preserved)."""
        with self._lock:
            self._entries.clear()

    @property
    def hit_rate(self):
        """Fraction of lookups served from cache (0.0 when unused)."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def __len__(self):
        with self._lock:
            return len(self._entries)

    def __contains__(self, key):
        with self._lock:
            return key in self._entries

    def __repr__(self):
        return (
            f"ResultCache(entries={len(self)}/{self.max_entries}, "
            f"hits={self.hits}, misses={self.misses})"
        )
