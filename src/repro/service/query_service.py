"""Concurrent batch query execution with result caching.

The ROADMAP's north star is a serving layer, not a single-user
prototype: many queries in flight, repeated hot queries answered from
memory, and no per-request rebuilding of read structures.  This module
is that layer, as a facade over one built :class:`~repro.system.Seda`
instance.

Threading model
---------------

* Every worker gets its **own** :class:`TopKSearcher` -- the searcher
  carries per-query mutable state (``stats``) and must not be shared.
* All workers **share** the system's immutable read structures: the
  term matcher, the scoring model, both full-text indexes, and the node
  store.  The lazily materialized snapshot structures behind them are
  protected by per-structure locks (see ``InvertedIndex``,
  ``PathIndex``, ``NodeStore``).
* The two derived caches the top-k unit depends on -- the
  document-reachability map and the scoring model's per-document edge
  index -- are computed **once**, before any worker runs
  (:meth:`TopKSearcher.warm`), then shared read-only.  Workers also
  share the system's impact-stream store (per-term score streams,
  built at most once per graph version) and the scoring model's
  pair-distance memo; both are safe to grow concurrently (GIL-atomic
  dict operations, idempotent values).
* Results are cached in a thread-safe LRU keyed on
  ``(normalized query, k, graph version)``.  ``Seda.add_documents``
  bumps the graph version and invalidates the cache, so mutation and
  serving never mix stale answers in.  Mutations themselves must be
  externally serialized with query execution (the usual single-writer /
  many-readers discipline).

Determinism: identical batches produce byte-identical results for any
worker count.  Duplicate queries within a batch are computed exactly
once (the others are served from the shared computation), and the top-k
unit breaks score ties deterministically, so neither scheduling nor
arrival order leaks into answers.
"""

import concurrent.futures
import queue
import threading
import time

from repro.obs.fingerprint import query_fingerprint
from repro.query.term import Query
from repro.search.topk import TopKSearcher
from repro.service.cache import ResultCache
from repro.service.stats import BatchStats, QueryStats


def keep_or_replace_service(current, build, workers, cache_size):
    """The lazy keep-or-replace contract both service facades share.

    Repeated calls with ``None`` (or matching) configuration return
    ``current`` unchanged -- its warm cache survives; an *explicitly*
    different configuration builds a replacement via ``build(workers,
    cache_size)`` with the defaults (4 workers, 256 cache entries)
    filled in.
    """
    if current is not None and (
        (workers is None or current.workers == workers)
        and (cache_size is None
             or current.cache.max_entries == cache_size)
    ):
        return current
    return build(
        4 if workers is None else workers,
        256 if cache_size is None else cache_size,
    )


def execute_deduplicated(queries_with_keys, k, workers, execute,
                         duplicate_stats):
    """The shared batch skeleton: dedup, fan out, reassemble in order.

    Used by both the unsharded and the sharded service so the subtle
    parts -- duplicate queries computed exactly once, the single-query/
    single-worker fast path, and duplicates reported as cache hits with
    no extra work -- can never drift apart.  ``execute(query, k)``
    serves one query and returns ``(results, stats)``;
    ``duplicate_stats(key)`` builds the stats object recorded for the
    second and later occurrences of a key within the batch.
    """
    unique = {}
    for query, key in queries_with_keys:
        unique.setdefault(key, query)
    outcomes = {}
    if len(unique) == 1 or workers == 1:
        for key, query in unique.items():
            outcomes[key] = execute(query, k)
    else:
        with concurrent.futures.ThreadPoolExecutor(
            max_workers=workers
        ) as executor:
            futures = {
                key: executor.submit(execute, query, k)
                for key, query in unique.items()
            }
            for key, future in futures.items():
                outcomes[key] = future.result()
    results, per_query, reported = [], [], set()
    for _query, key in queries_with_keys:
        answer, stats = outcomes[key]
        results.append(list(answer))
        if key in reported:
            # A duplicate within the batch: served from the shared
            # computation, i.e. a cache hit with no extra work.
            stats = duplicate_stats(key)
        reported.add(key)
        per_query.append(stats)
    return results, per_query


class QueryService:
    """Concurrent, caching query execution over one SEDA system."""

    def __init__(self, system, workers=4, cache_size=256, registry=None):
        if workers <= 0:
            raise ValueError("workers must be positive")
        self.system = system
        self.workers = workers
        self.cache = ResultCache(cache_size)
        #: Optional retained :class:`~repro.obs.registry.StatsRegistry`.
        #: ``None`` (the default) keeps serving at zero observability
        #: overhead; attach one (``Seda.enable_observability()``) and
        #: every served query -- computed, cached, or batch-duplicate --
        #: is recorded under its normalized fingerprint.
        self.registry = registry
        self._pool = [
            TopKSearcher(system.matcher, system.scoring,
                         streams=system.streams)
            for _ in range(workers)
        ]
        self._warm_lock = threading.Lock()
        self._warm_version = None
        self._refresh_shared_caches()
        self._searchers = queue.SimpleQueue()
        for searcher in self._pool:
            self._searchers.put(searcher)

    def _refresh_shared_caches(self):
        """(Re)compute the shared caches for the current graph version.

        Runs at construction and again on the first query after a graph
        mutation -- without it every worker would rebuild a private
        reachability map post-mutation, violating the read-only-sharing
        invariant.  Mutations are externally serialized with queries
        (single writer / many readers), so no search is in flight when
        the version actually changes; the lock only collapses duplicate
        refreshes from concurrent first queries.
        """
        version = self.system.graph.version
        if self._warm_version == version:
            return
        with self._warm_lock:
            if self._warm_version == version:
                return
            lead = self._pool[0]
            lead.warm()
            for searcher in self._pool[1:]:
                searcher.share_read_caches(lead)
            self._warm_version = version

    # -- single queries -------------------------------------------------------

    def execute(self, query, k=10):
        """Serve one query; returns ``(results, QueryStats)``.

        ``query`` is a :class:`Query` or a list of ``(context, search)``
        pairs.  Results come from the LRU cache when the same normalized
        query was served at the current graph version; otherwise a
        worker searcher computes and caches them.
        """
        query = self._as_query(query)
        self._refresh_shared_caches()
        key = (query.cache_key(), k, self.system.graph.version)
        start = time.perf_counter()
        cached = self.cache.get(key)
        if cached is not None:
            stats = QueryStats(
                key, k, time.perf_counter() - start, cache_hit=True
            )
            results = list(cached)
        else:
            results, stats = self._compute(query, k, key, start)
        if self.registry is not None:
            self.registry.record(query_fingerprint(query, k), stats)
        return results, stats

    def _compute(self, query, k, key, start):
        searcher = self._searchers.get()
        try:
            results = searcher.search(query, k=k)
            raw = searcher.stats
            stats = QueryStats(
                key, k, 0.0, cache_hit=False,
                sorted_accesses=raw["sorted_accesses"],
                tuples_scored=raw["tuples_scored"],
                pruned=raw["pruned"],
                early_stop=raw["early_stop"],
            )
        finally:
            self._searchers.put(searcher)
        stored = self.cache.put(key, results)
        stats.latency = time.perf_counter() - start
        return list(stored), stats

    # -- batches --------------------------------------------------------------

    def execute_batch(self, queries, k=10):
        """Serve a batch concurrently; ``(results_per_query, BatchStats)``.

        Results are returned in input order.  Duplicate queries within
        the batch are computed once and fanned out; the extra
        occurrences count as cache hits in the batch statistics.
        """
        parsed = [self._as_query(query) for query in queries]
        self._refresh_shared_caches()
        version = self.system.graph.version
        keys = [(query.cache_key(), k, version) for query in parsed]
        counters_before = self._scoring_counters()
        start = time.perf_counter()
        results, per_query = execute_deduplicated(
            list(zip(parsed, keys)), k, self.workers,
            lambda query, size: self.execute(query, k=size),
            self._duplicate_stats(parsed, keys, k),
        )
        wall = time.perf_counter() - start
        counters_after = self._scoring_counters()
        scoring_caches = {
            name: counters_after[name] - counters_before[name]
            for name in counters_after
        }
        return results, BatchStats(
            per_query, wall, self.workers, scoring_caches=scoring_caches
        )

    def _duplicate_stats(self, parsed, keys, k):
        """Build the in-batch duplicate-stats callback.

        Duplicates never pass through :meth:`execute` (the batch
        skeleton fans the shared computation out), so the registry
        records them here -- every occurrence a client received counts.
        """
        by_key = {}
        for query, key in zip(parsed, keys):
            by_key.setdefault(key, query)

        def duplicate_stats(key):
            stats = QueryStats(key, k, 0.0, cache_hit=True)
            if self.registry is not None:
                self.registry.record(
                    query_fingerprint(by_key[key], k), stats
                )
            return stats

        return duplicate_stats

    def _scoring_counters(self):
        """Cumulative shared-cache counters (impact streams + distance
        memo); batch stats report the delta across one batch."""
        counters = dict(self.system.streams.counters())
        counters.update(self.system.scoring.counters())
        return counters

    # -- maintenance ----------------------------------------------------------

    def invalidate(self):
        """Drop all cached results (used after document ingestion)."""
        self.cache.invalidate()

    @staticmethod
    def _as_query(query):
        if isinstance(query, Query):
            return query
        return Query.parse(query)

    def __repr__(self):
        return (
            f"QueryService(workers={self.workers}, cache={self.cache!r})"
        )
