"""Per-query and aggregate serving statistics.

The paper's Section 8 tracks *user* effort per exploration; the query
service tracks *system* effort per served query: wall-clock latency,
whether the result came from the cache, and the top-k unit's own
counters (sorted accesses, tuples scored, early termination).  Batch
execution aggregates these into throughput and hit-rate numbers -- the
series ``repro bench-queries`` and ``benchmarks/test_bench_service.py``
report.

Sharded serving adds one dimension: a scatter-gather query runs one
top-k search *per shard*, so :class:`ShardedQueryStats` keeps the
per-shard breakdown beside the familiar totals, and
:class:`ShardedBatchStats` aggregates that breakdown across a batch --
the numbers an operator reads to spot a hot or skewed shard (see
``docs/OPERATIONS.md``).
"""


class QueryStats:
    """One served query's record."""

    __slots__ = (
        "cache_key",
        "k",
        "latency",
        "cache_hit",
        "sorted_accesses",
        "tuples_scored",
        "pruned",
        "early_stop",
    )

    def __init__(self, cache_key, k, latency, cache_hit,
                 sorted_accesses=0, tuples_scored=0, pruned=0,
                 early_stop=False):
        self.cache_key = cache_key
        self.k = k
        self.latency = latency
        self.cache_hit = cache_hit
        self.sorted_accesses = sorted_accesses
        self.tuples_scored = tuples_scored
        self.pruned = pruned
        self.early_stop = early_stop

    def as_dict(self):
        return {name: getattr(self, name) for name in self.__slots__}

    def __repr__(self):
        source = "cache" if self.cache_hit else "computed"
        return (
            f"QueryStats({source}, k={self.k}, "
            f"latency={self.latency * 1000:.2f}ms, "
            f"sorted_accesses={self.sorted_accesses})"
        )


class ShardedQueryStats(QueryStats):
    """One scatter-gather query's record, with the per-shard breakdown.

    The inherited totals (``sorted_accesses``, ``tuples_scored``,
    ``pruned``) are sums across shards; ``per_shard`` holds one dict
    per shard -- ``{"shard", "sorted_accesses", "tuples_scored",
    "pruned", "early_stop"}`` -- in shard order.  Under a degraded
    scatter (``allow_partial``), shards that contributed nothing are
    listed in ``failed_shards`` as ``{"shard", "error"}`` dicts and
    their ``per_shard`` entries carry a ``"failed"`` message; an empty
    ``failed_shards`` means the answer is complete.
    """

    __slots__ = ("per_shard", "failed_shards")

    def __init__(self, cache_key, k, latency, cache_hit,
                 sorted_accesses=0, tuples_scored=0, pruned=0,
                 early_stop=False, per_shard=(), failed_shards=()):
        super().__init__(
            cache_key, k, latency, cache_hit,
            sorted_accesses=sorted_accesses, tuples_scored=tuples_scored,
            pruned=pruned, early_stop=early_stop,
        )
        self.per_shard = tuple(
            dict(entry) for entry in per_shard
        )
        self.failed_shards = tuple(
            dict(entry) for entry in failed_shards
        )

    @property
    def partial(self):
        """True when any shard failed and the results are incomplete."""
        return bool(self.failed_shards)

    def as_dict(self):
        record = {
            name: getattr(self, name) for name in QueryStats.__slots__
        }
        record["per_shard"] = [dict(entry) for entry in self.per_shard]
        record["failed_shards"] = [
            dict(entry) for entry in self.failed_shards
        ]
        return record


#: Counter names aggregated per shard across a batch.
_SHARD_COUNTERS = ("sorted_accesses", "tuples_scored", "pruned")


class BatchStats:
    """Aggregate record for one :meth:`QueryService.execute_batch` call.

    ``scoring_caches`` carries the scoring pipeline's shared-cache
    activity **during this batch** (deltas of cumulative counters):
    ``stream_hits``/``stream_misses`` for the impact-stream store and
    ``distance_hits``/``distance_misses`` for the pair-distance memo.
    """

    def __init__(self, per_query, wall_time, workers, scoring_caches=None):
        self.per_query = list(per_query)
        self.wall_time = wall_time
        self.workers = workers
        self.scoring_caches = dict(scoring_caches or {})

    @property
    def queries(self):
        return len(self.per_query)

    @property
    def cache_hits(self):
        return sum(1 for stats in self.per_query if stats.cache_hit)

    @property
    def computed(self):
        return self.queries - self.cache_hits

    @property
    def hit_rate(self):
        return self.cache_hits / self.queries if self.per_query else 0.0

    @property
    def throughput(self):
        """Queries served per second of batch wall-clock time."""
        return self.queries / self.wall_time if self.wall_time > 0 else 0.0

    @property
    def sorted_accesses(self):
        return sum(stats.sorted_accesses for stats in self.per_query)

    @property
    def tuples_scored(self):
        return sum(stats.tuples_scored for stats in self.per_query)

    @property
    def pruned(self):
        """Candidate tuples skipped by the content-score upper bound."""
        return sum(stats.pruned for stats in self.per_query)

    @staticmethod
    def _rate(hits, misses):
        total = hits + misses
        return hits / total if total else 0.0

    @property
    def stream_hit_rate(self):
        """Impact-stream store hit rate during this batch."""
        caches = self.scoring_caches
        return self._rate(
            caches.get("stream_hits", 0), caches.get("stream_misses", 0)
        )

    @property
    def distance_hit_rate(self):
        """Pair-distance memo hit rate during this batch."""
        caches = self.scoring_caches
        return self._rate(
            caches.get("distance_hits", 0),
            caches.get("distance_misses", 0),
        )

    def summary(self):
        """One-line human-readable digest (CLI and benchmark output)."""
        return (
            f"{self.queries} queries in {self.wall_time * 1000:.1f}ms "
            f"({self.throughput:.0f} q/s, {self.workers} workers, "
            f"{self.cache_hits} cache hits, "
            f"hit rate {self.hit_rate:.0%}, "
            f"{self.sorted_accesses} sorted accesses, "
            f"{self.pruned} pruned, "
            f"stream cache {self.stream_hit_rate:.0%}, "
            f"distance cache {self.distance_hit_rate:.0%})"
        )

    def __repr__(self):
        return f"BatchStats({self.summary()})"


class ShardedBatchStats(BatchStats):
    """Batch aggregate over scatter-gather queries, per-shard totals kept.

    Every ``per_query`` entry that carries a ``per_shard`` breakdown
    (computed queries do; cache hits ran no search and contribute
    nothing) is folded into :attr:`shard_totals`.
    """

    @property
    def shard_totals(self):
        """``{shard_index: {counter: total, "early_stops": n}}``.

        Computed once (``per_query`` is fixed at construction) and
        cached for the repeated accesses reporting paths make.
        """
        totals = getattr(self, "_shard_totals", None)
        if totals is None:
            totals = {}
            for stats in self.per_query:
                for entry in getattr(stats, "per_shard", ()):
                    shard = totals.setdefault(
                        entry["shard"],
                        {name: 0 for name in _SHARD_COUNTERS}
                        | {"early_stops": 0},
                    )
                    for name in _SHARD_COUNTERS:
                        shard[name] += entry[name]
                    shard["early_stops"] += bool(entry.get("early_stop"))
            self._shard_totals = totals
        return totals

    def shard_summary(self):
        """One line per shard: the skew/hot-shard diagnostic."""
        lines = []
        for index, counters in sorted(self.shard_totals.items()):
            lines.append(
                f"shard {index}: {counters['sorted_accesses']} sorted "
                f"accesses, {counters['tuples_scored']} tuples scored, "
                f"{counters['pruned']} pruned, "
                f"{counters['early_stops']} early stops"
            )
        return "\n".join(lines)

    def __repr__(self):
        return f"ShardedBatchStats({self.summary()})"
