"""The serving layer: concurrent batch queries with result caching."""

from repro.service.cache import ResultCache
from repro.service.query_service import QueryService
from repro.service.stats import (
    BatchStats,
    QueryStats,
    ShardedBatchStats,
    ShardedQueryStats,
)

__all__ = [
    "BatchStats", "QueryService", "QueryStats", "ResultCache",
    "ShardedBatchStats", "ShardedQueryStats",
]
