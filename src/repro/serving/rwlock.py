"""Writer-priority readers-writer lock: the serving-path discipline.

The query service's contract is single-writer / many-readers:
mutations (``add_documents``, reload, drain) must be serialized
against query execution, but between mutations any number of reader
threads may serve concurrently.  Up to now that discipline was the
*caller's* problem (``tests/test_serving_stress.py`` modeled it with a
private lock); the long-running server makes it a product concern, so
the lock lives here.

Writer priority: once a writer is waiting, new readers block until it
runs.  Without it a steady query stream would starve ingestion forever
-- the classic readers-writer pathology, exactly wrong for a server
whose writes carry durability acknowledgments.

The lock is not reentrant.  Guard blocks with the context managers::

    with lock.read():    # many concurrently
        ...serve a query...
    with lock.write():   # exclusive
        ...mutate the indexes...
"""

import contextlib
import threading


class ReadWriteLock:
    """Writer-priority RW lock built on one condition variable."""

    def __init__(self):
        self._condition = threading.Condition()
        self._readers = 0
        self._writer = False
        self._writers_waiting = 0

    # -- reader side ----------------------------------------------------------

    def acquire_read(self):
        with self._condition:
            while self._writer or self._writers_waiting:
                self._condition.wait()
            self._readers += 1

    def release_read(self):
        with self._condition:
            self._readers -= 1
            self._condition.notify_all()

    # -- writer side ----------------------------------------------------------

    def acquire_write(self):
        with self._condition:
            self._writers_waiting += 1
            try:
                while self._writer or self._readers:
                    self._condition.wait()
            finally:
                self._writers_waiting -= 1
            self._writer = True

    def release_write(self):
        with self._condition:
            self._writer = False
            self._condition.notify_all()

    # -- context managers -----------------------------------------------------

    @contextlib.contextmanager
    def read(self):
        self.acquire_read()
        try:
            yield self
        finally:
            self.release_read()

    @contextlib.contextmanager
    def write(self):
        self.acquire_write()
        try:
            yield self
        finally:
            self.release_write()

    def __repr__(self):
        return (
            f"ReadWriteLock(readers={self._readers}, "
            f"writer={self._writer}, waiting={self._writers_waiting})"
        )
