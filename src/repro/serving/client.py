"""A small stdlib client for the serving API.

:class:`ServingClient` speaks the JSON protocol of
:mod:`repro.serving.app` over one keep-alive ``http.client``
connection (reconnecting transparently when the server closed it), so
tests, benchmarks, and operators' scripts don't each reinvent request
encoding.  Non-2xx responses raise :class:`ServerError` carrying the
status, the decoded error payload, and the parsed ``Retry-After``
backoff -- the admission-control tests assert on exactly these fields.

One client instance is one logical client for admission accounting
(its ``client_id`` rides every request in the ``X-Repro-Client``
header) and is **not** thread-safe: concurrent callers create one
client per thread, which also matches how per-client limits are
counted.
"""

import http.client
import json

from repro.serving.server import CLIENT_HEADER, TEST_DELAY_HEADER


class ServerError(RuntimeError):
    """A non-2xx response from the serving API."""

    def __init__(self, status, payload, retry_after=None):
        self.status = status
        self.payload = payload if isinstance(payload, dict) else {}
        #: Parsed ``Retry-After`` seconds, when the server sent one.
        self.retry_after = retry_after
        detail = self.payload.get("error", payload)
        super().__init__(f"HTTP {status}: {detail}")


class ServingClient:
    """JSON client over one reusable connection to a repro server."""

    def __init__(self, host, port, client_id=None, timeout=30):
        self.host = host
        self.port = int(port)
        self.client_id = client_id
        self.timeout = timeout
        self._connection = None

    # -- transport ------------------------------------------------------------

    def _connect(self):
        if self._connection is None:
            self._connection = http.client.HTTPConnection(
                self.host, self.port, timeout=self.timeout
            )
        return self._connection

    def close(self):
        if self._connection is not None:
            self._connection.close()
            self._connection = None

    def request(self, method, path, body=None, headers=None):
        """One API call; returns the decoded payload (dict or text).

        Retries exactly once on a dead keep-alive connection (the
        server may close idle connections or have restarted); a
        request that *reached* the server is never resent.
        """
        encoded = None
        send_headers = {}
        if body is not None:
            encoded = json.dumps(body).encode("utf-8")
            send_headers["Content-Type"] = "application/json"
        if self.client_id:
            send_headers[CLIENT_HEADER] = self.client_id
        send_headers.update(headers or {})
        try:
            response = self._roundtrip(method, path, encoded, send_headers)
        except (http.client.NotConnected, http.client.CannotSendRequest,
                BrokenPipeError, ConnectionResetError,
                http.client.BadStatusLine, http.client.RemoteDisconnected):
            # Stale keep-alive connection: reconnect and retry once.
            self.close()
            response = self._roundtrip(method, path, encoded, send_headers)
        status, payload, retry_after = response
        if status >= 400:
            raise ServerError(status, payload, retry_after)
        return payload

    def _roundtrip(self, method, path, encoded, headers):
        connection = self._connect()
        connection.request(method, path, body=encoded, headers=headers)
        response = connection.getresponse()
        raw = response.read()
        if response.will_close:
            self.close()
        retry_after = response.getheader("Retry-After")
        if retry_after is not None:
            retry_after = float(retry_after)
        content_type = response.getheader("Content-Type", "")
        if content_type.startswith("application/json"):
            payload = json.loads(raw.decode("utf-8")) if raw else None
        else:
            payload = raw.decode("utf-8")
        return response.status, payload, retry_after

    # -- the API --------------------------------------------------------------

    def search(self, query, k=10, test_delay=None):
        """``POST /search``; the response dict (``results``, ``generation``,
        ``cache_hit``).  ``query`` is a pair list or a query-line string."""
        headers = (
            {TEST_DELAY_HEADER: str(test_delay)} if test_delay else None
        )
        return self.request(
            "POST", "/search", {"query": _wire_query(query), "k": k},
            headers=headers,
        )

    def search_many(self, queries, k=10):
        """``POST /search_many``; per-query result lists in input order."""
        return self.request(
            "POST", "/search_many",
            {"queries": [_wire_query(query) for query in queries], "k": k},
        )

    def explain(self, query, k=10):
        """``POST /explain``; the execution profile report."""
        return self.request(
            "POST", "/explain", {"query": _wire_query(query), "k": k}
        )

    def add_documents(self, documents, value_links=None):
        """``POST /add_documents``; documents as ``(name, xml)`` pairs
        or bare XML strings.  Acknowledged means WAL-durable."""
        wire = [
            list(entry) if isinstance(entry, (tuple, list)) else entry
            for entry in documents
        ]
        body = {"documents": wire}
        if value_links:
            body["value_links"] = [
                spec if isinstance(spec, dict) else spec.to_dict()
                for spec in value_links
            ]
        return self.request("POST", "/add_documents", body)

    def healthz(self):
        """``GET /healthz``; the liveness/lifecycle report."""
        return self.request("GET", "/healthz")

    def metrics(self, as_json=True):
        """``GET /metrics``; JSON tree or Prometheus text."""
        path = "/metrics?format=json" if as_json else "/metrics"
        return self.request("GET", path)

    def drain(self):
        """``POST /admin/drain``; quiesce, snapshot, shut down."""
        return self.request("POST", "/admin/drain")

    def reload(self):
        """``POST /admin/reload``; swap in the on-disk snapshot+WAL."""
        return self.request("POST", "/admin/reload")

    def rebalance(self, op, shard=None, a=None, b=None, metric=None,
                  moves=None):
        """``POST /admin/rebalance``; online topology change.

        ``op`` is ``"split"`` (with ``shard``), ``"merge"`` (with
        ``a``/``b``), or ``"rebalance"`` (with explicit ``moves`` --
        ``{global_doc_index: target_shard}`` -- or a ``metric`` the
        server plans from).  Returns the operation summary.
        """
        body = {"op": op}
        if shard is not None:
            body["shard"] = int(shard)
        if a is not None:
            body["a"] = int(a)
        if b is not None:
            body["b"] = int(b)
        if metric is not None:
            body["metric"] = metric
        if moves is not None:
            body["moves"] = {str(key): int(value)
                             for key, value in moves.items()}
        return self.request("POST", "/admin/rebalance", body)

    # -- context manager ------------------------------------------------------

    def __enter__(self):
        return self

    def __exit__(self, *exc_info):
        self.close()
        return False

    def __repr__(self):
        return (
            f"ServingClient({self.host}:{self.port}, "
            f"client_id={self.client_id!r})"
        )


def _wire_query(query):
    """Wire form of a query: strings pass through, pairs listify."""
    if isinstance(query, str):
        return query
    return [list(pair) for pair in query]
