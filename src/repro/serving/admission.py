"""Admission control: bounded in-flight work with per-client fairness.

A long-running server cannot let load grow without bound -- every
admitted request pins a worker thread, a searcher, and memory, so past
a point more admissions only add latency for everyone.  The
:class:`AdmissionController` enforces two limits *before* any work
starts:

* ``max_inflight`` -- total requests executing at once.  At the limit
  new requests are rejected immediately (HTTP 429 + ``Retry-After``),
  which is backpressure the client can act on, instead of an
  ever-deepening queue it cannot see.
* ``per_client`` -- concurrent requests per client identity (the
  ``X-Repro-Client`` header, falling back to the peer address), so one
  greedy client saturating its connection pool cannot consume the
  whole global budget.

Rejection is cheap and stateless: counters move only on admit/release,
and the controller never queues.  The *drain* lifecycle rides the same
counters: :meth:`begin_drain` atomically stops admissions (rejections
then say "draining", HTTP 503) and :meth:`wait_idle` blocks until the
already-admitted requests finish -- the quiesce step of a graceful
shutdown.

Everything is condition-variable based; there are no timers, so tests
drive every state transition deterministically.
"""

import threading
import time

#: Rejection reasons, also the ``reason`` field of the 429/503 body.
REJECT_SATURATED = "saturated"
REJECT_CLIENT_LIMIT = "client-limit"
REJECT_DRAINING = "draining"


class AdmissionDecision:
    """The outcome of one admission attempt."""

    __slots__ = ("admitted", "reason", "retry_after")

    def __init__(self, admitted, reason=None, retry_after=None):
        self.admitted = admitted
        self.reason = reason
        #: Suggested client backoff in seconds (the ``Retry-After``
        #: header).  Set on every rejection, draining included -- a
        #: drain is often a rolling restart, so "come back shortly" is
        #: the right signal, not "go away forever".
        self.retry_after = retry_after

    def __bool__(self):
        return self.admitted

    def __repr__(self):
        if self.admitted:
            return "AdmissionDecision(admitted)"
        return (
            f"AdmissionDecision(rejected, reason={self.reason!r}, "
            f"retry_after={self.retry_after})"
        )


class AdmissionController:
    """Thread-safe in-flight accounting with global and per-client caps."""

    def __init__(self, max_inflight=64, per_client=16, retry_after=1):
        if max_inflight < 1:
            raise ValueError("max_inflight must be >= 1")
        if per_client < 1:
            raise ValueError("per_client must be >= 1")
        self.max_inflight = int(max_inflight)
        self.per_client = int(per_client)
        self.retry_after = retry_after
        self._condition = threading.Condition()
        self._inflight = 0
        self._per_client = {}
        self._draining = False
        # Lifetime counters for /metrics.
        self.admitted_total = 0
        self.rejected = {
            REJECT_SATURATED: 0,
            REJECT_CLIENT_LIMIT: 0,
            REJECT_DRAINING: 0,
        }
        self.peak_inflight = 0
        self.unpaired_release = 0

    # -- admission ------------------------------------------------------------

    def admit(self, client):
        """Try to admit one request for ``client``.

        Returns an :class:`AdmissionDecision`; when it is truthy the
        caller *must* pair it with :meth:`release` (try/finally).
        """
        with self._condition:
            if self._draining:
                self.rejected[REJECT_DRAINING] += 1
                return AdmissionDecision(
                    False, REJECT_DRAINING, self.retry_after
                )
            if self._inflight >= self.max_inflight:
                self.rejected[REJECT_SATURATED] += 1
                return AdmissionDecision(
                    False, REJECT_SATURATED, self.retry_after
                )
            held = self._per_client.get(client, 0)
            if held >= self.per_client:
                self.rejected[REJECT_CLIENT_LIMIT] += 1
                return AdmissionDecision(
                    False, REJECT_CLIENT_LIMIT, self.retry_after
                )
            self._inflight += 1
            self._per_client[client] = held + 1
            self.admitted_total += 1
            self.peak_inflight = max(self.peak_inflight, self._inflight)
            return AdmissionDecision(True)

    def release(self, client):
        """Return one admitted request's slot (global and per-client).

        An unpaired release (a release with nothing in flight, or for a
        client holding no slot) is a caller bug: it must not drive the
        counters negative, which would silently widen the saturation
        gate forever.  Both counters clamp at zero and the incident is
        counted in ``unpaired_release`` for ``/metrics``.
        """
        with self._condition:
            unpaired = False
            if self._inflight > 0:
                self._inflight -= 1
            else:
                unpaired = True
            held = self._per_client.get(client, 0) - 1
            if held < 0:
                unpaired = True
            if held <= 0:
                self._per_client.pop(client, None)
            else:
                self._per_client[client] = held
            if unpaired:
                self.unpaired_release += 1
            self._condition.notify_all()

    # -- drain lifecycle ------------------------------------------------------

    @property
    def draining(self):
        with self._condition:
            return self._draining

    @property
    def inflight(self):
        with self._condition:
            return self._inflight

    def begin_drain(self):
        """Stop admitting; already-admitted requests keep running."""
        with self._condition:
            self._draining = True
            self._condition.notify_all()

    def wait_idle(self, leftover=0, timeout=None):
        """Block until at most ``leftover`` requests remain in flight.

        The drain handler passes ``leftover=0`` (admin endpoints
        bypass admission, so it holds no slot itself).  Returns
        ``True`` on quiesce, ``False`` on timeout (the caller decides
        whether to force shutdown anyway).
        """
        with self._condition:
            if timeout is None:
                while self._inflight > leftover:
                    self._condition.wait()
                return True
            end = time.monotonic() + float(timeout)
            while self._inflight > leftover:
                remaining = end - time.monotonic()
                if remaining <= 0:
                    return False
                self._condition.wait(remaining)
            return True

    # -- reporting ------------------------------------------------------------

    def counters(self):
        """JSON-clean admission counters for ``/metrics``."""
        with self._condition:
            return {
                "max_inflight": self.max_inflight,
                "per_client_limit": self.per_client,
                "inflight": self._inflight,
                "peak_inflight": self.peak_inflight,
                "admitted_total": self.admitted_total,
                "rejected": dict(self.rejected),
                "unpaired_release": self.unpaired_release,
                "draining": self._draining,
            }

    def __repr__(self):
        return (
            f"AdmissionController(inflight={self._inflight}/"
            f"{self.max_inflight}, per_client<={self.per_client}, "
            f"draining={self._draining})"
        )
