"""Long-running serving: the HTTP daemon over snapshots and the WAL.

Everything before this package ran build-then-query inside one process
invocation; ``repro serve`` turns the system into a daemon that serves
queries while documents stream in.  The pieces:

* :mod:`~repro.serving.app` -- endpoint logic, readers-writer
  consistency, and the drain/reload lifecycle (socket-free, the unit
  under test).
* :mod:`~repro.serving.server` -- the threaded stdlib HTTP layer and
  :func:`~repro.serving.server.start_server`.
* :mod:`~repro.serving.client` -- a keep-alive JSON client
  (:class:`~repro.serving.client.ServingClient`).
* :mod:`~repro.serving.admission` -- bounded in-flight admission
  control with per-client fairness (429 + ``Retry-After``).
* :mod:`~repro.serving.rwlock` -- the writer-priority readers-writer
  lock behind the single-writer / many-readers serving contract.

Quick start::

    from repro.serving import ServingClient, start_server

    server = start_server("collection.snapshot")
    with ServingClient(server.host, server.port) as client:
        hits = client.search('*:"United States" ;; trade_country:*')
        client.add_documents([("new-doc", "<country>...</country>")])
        client.drain()                  # snapshot committed, WAL empty
    server.wait()
"""

from repro.serving.admission import AdmissionController
from repro.serving.app import ServingApp, load_serving_system
from repro.serving.client import ServerError, ServingClient
from repro.serving.rwlock import ReadWriteLock
from repro.serving.server import ReproServer, start_server

__all__ = [
    "AdmissionController",
    "ReadWriteLock",
    "ReproServer",
    "ServerError",
    "ServingApp",
    "ServingClient",
    "load_serving_system",
    "start_server",
]
