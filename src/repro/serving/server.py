"""The HTTP layer of ``repro serve``: sockets in, JSON out.

:class:`ReproServer` binds a :class:`http.server.ThreadingHTTPServer`
(one thread per connection, stdlib only -- the repo vendors nothing)
whose handler translates requests into
:meth:`~repro.serving.app.ServingApp.handle` calls.  All decisions --
routing, admission, locking, lifecycle -- live in the app; this module
only parses HTTP and writes responses, plus the two pieces of
lifecycle glue that genuinely belong at the socket layer:

* after the **drain** response is written, the app's ``on_drained``
  callback fires and the listener shuts down, so
  :meth:`ReproServer.wait` (and the ``repro serve`` process) returns;
* responses always carry ``Content-Length`` and the server speaks
  HTTP/1.1 keep-alive, so benchmark clients can reuse connections.

The client identity for per-client admission limits is the
``X-Repro-Client`` header when present, else the peer address.
"""

import http.server
import json
import threading
import urllib.parse

from repro.serving.app import ServingApp, load_serving_system

#: Header naming the admission-control client identity.
CLIENT_HEADER = "X-Repro-Client"

#: Debug-only header: hold the admitted slot for N seconds (honored
#: only when the app was built with ``debug=True``; tests use it to
#: fill the admission window deterministically).
TEST_DELAY_HEADER = "X-Repro-Test-Delay"

#: Cap on request bodies (64 MiB): a malformed or malicious
#: Content-Length must not make the handler allocate unbounded memory.
MAX_BODY_BYTES = 64 * 1024 * 1024


class _Handler(http.server.BaseHTTPRequestHandler):
    """One connection; delegates everything to the bound app."""

    app = None  # bound by ReproServer via a subclass attribute
    protocol_version = "HTTP/1.1"
    timeout = 60

    # -- plumbing -------------------------------------------------------------

    def log_message(self, format, *args):  # noqa: A002 - stdlib signature
        """Silence per-request stderr chatter; /metrics is the log."""

    def _client_id(self):
        header = self.headers.get(CLIENT_HEADER)
        if header:
            return header.strip()
        return self.client_address[0]

    def _read_body(self):
        length = int(self.headers.get("Content-Length") or 0)
        if length <= 0:
            return None
        if length > MAX_BODY_BYTES:
            raise ValueError(
                f"request body of {length} bytes exceeds the "
                f"{MAX_BODY_BYTES}-byte limit"
            )
        raw = self.rfile.read(length)
        if not raw:
            return None
        return json.loads(raw.decode("utf-8"))

    def _serve(self, method):
        split = urllib.parse.urlsplit(self.path)
        params = dict(urllib.parse.parse_qsl(split.query))
        try:
            body = self._read_body()
        except (ValueError, UnicodeDecodeError) as error:
            self._write(
                400, json.dumps({"error": f"bad request body: {error}"})
                .encode("utf-8"), "application/json", {},
            )
            return
        response = self.app.handle(
            method, split.path, body=body, client=self._client_id(),
            params=params,
            test_delay=self.headers.get(TEST_DELAY_HEADER),
        )
        data, content_type = response.body()
        self._write(response.status, data, content_type, response.headers)
        if self.app.state == "drained" and self.app.on_drained is not None:
            # The drain response is on the wire; stop the listener.
            # (Idempotent: on_drained disarms itself on first call.)
            callback, self.app.on_drained = self.app.on_drained, None
            self.close_connection = True
            callback()

    def _write(self, status, data, content_type, headers):
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(data)))
        for name, value in headers.items():
            if name.lower() == "connection":
                self.close_connection = True
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(data)

    # -- verbs ----------------------------------------------------------------

    def do_GET(self):
        self._serve("GET")

    def do_POST(self):
        self._serve("POST")


class ReproServer:
    """One listening server over a :class:`ServingApp`."""

    def __init__(self, app, host="127.0.0.1", port=0):
        self.app = app
        handler = type("BoundHandler", (_Handler,), {"app": app})
        self.httpd = http.server.ThreadingHTTPServer((host, port), handler)
        self.httpd.daemon_threads = True
        self._thread = None
        app.on_drained = self._shutdown_async

    # -- addresses ------------------------------------------------------------

    @property
    def host(self):
        return self.httpd.server_address[0]

    @property
    def port(self):
        return self.httpd.server_address[1]

    @property
    def url(self):
        return f"http://{self.host}:{self.port}"

    # -- lifecycle ------------------------------------------------------------

    def start(self):
        """Serve in a background thread; returns immediately."""
        if self._thread is not None:
            raise RuntimeError("server already started")
        self._thread = threading.Thread(
            target=self.httpd.serve_forever, name="repro-serve",
            daemon=True,
        )
        self._thread.start()
        return self

    def wait(self, timeout=None):
        """Block until the listener stops (drain or :meth:`stop`).

        Returns ``True`` when it stopped, ``False`` on timeout.
        """
        if self._thread is None:
            return True
        self._thread.join(timeout)
        return not self._thread.is_alive()

    def _shutdown_async(self):
        """Stop the listener from outside its own handler thread
        (``shutdown()`` deadlocks when called from one)."""
        threading.Thread(
            target=self._shutdown, name="repro-serve-shutdown", daemon=True
        ).start()

    def _shutdown(self):
        self.httpd.shutdown()
        self.httpd.server_close()

    def stop(self):
        """Hard stop: close the listener without draining.

        In-flight handler threads are daemons; the served system is
        untouched (anything acknowledged is already in the WAL).
        """
        self._shutdown()
        if self._thread is not None:
            self._thread.join(timeout=10)

    # -- context manager ------------------------------------------------------

    def __enter__(self):
        return self.start()

    def __exit__(self, *exc_info):
        self.stop()
        return False

    def __repr__(self):
        return f"ReproServer({self.url}, app={self.app!r})"


def start_server(snapshot_path, host="127.0.0.1", port=0, **app_options):
    """Load ``snapshot_path`` and serve it; returns a started server.

    The one-call form the tests, benchmarks, and examples use::

        server = start_server("collection.snapshot")
        ... ServingClient(server.host, server.port) ...
        server.stop()   # or drain via the admin endpoint
    """
    app = ServingApp(
        load_serving_system(snapshot_path), snapshot_path, **app_options
    )
    return ReproServer(app, host=host, port=port).start()
