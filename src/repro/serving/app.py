"""The serving application: endpoint logic behind ``repro serve``.

:class:`ServingApp` is the whole server minus the sockets: it owns a
loaded system (single-file :class:`~repro.system.Seda` or sharded
:class:`~repro.shard.ShardedSeda`), its concurrent query service, the
readers-writer discipline, admission control, and the drain/reload
lifecycle, and maps ``(method, path, body)`` triples to JSON-clean
responses.  The HTTP layer (:mod:`repro.serving.server`) is a thin
translator over :meth:`ServingApp.handle`, so every behavior here is
unit-testable without opening a port.

Consistency contract
--------------------

* Queries run under the **read** side of one
  :class:`~repro.serving.rwlock.ReadWriteLock`; ``add_documents``,
  ``reload``, and the snapshot commit inside ``drain`` take the
  **write** side.  Combined with the result caches keyed on
  ``DataGraph.version``, every answer is computed against exactly one
  index generation -- answers served *during* online ingestion are
  byte-identical to an offline rebuild from the same document
  sequence (property-tested in ``tests/test_serving_properties.py``).
* Writes are durable before they are acknowledged: the system is
  loaded from a snapshot, so ``add_documents`` appends to the
  write-ahead log (fsynced) before any index mutates.  A crash at any
  point recovers to pre- or post-batch, never a hybrid
  (``tests/test_crash_recovery.py`` SIGKILLs the server to prove it).
* **Drain** quiesces: admission stops (new requests get 503), in-flight
  requests finish, the write lock is taken, the snapshot is committed
  (truncating the WAL), and the server exits with an fsck-clean
  directory.

Request shapes (all POST bodies JSON)::

    /search        {"query": <query>, "k": 10}
    /search_many   {"queries": [<query>, ...], "k": 10}
    /explain       {"query": <query>, "k": 10}
    /add_documents {"documents": [[name|null, xml], ...],
                    "value_links": [spec, ...]}
    /admin/drain   {}
    /admin/reload  {}
    /admin/rebalance {"op": "split", "shard": 0}
                     | {"op": "merge", "a": 0, "b": 1}
                     | {"op": "rebalance", "metric": "documents"}
                     | {"op": "rebalance", "moves": {"3": 1, ...}}

A ``<query>`` is either a list of ``[context, search]`` pairs or a
string in the CLI's query-line syntax (``ctx:term ;; ctx:term``).
``GET /healthz`` and ``GET /metrics`` bypass admission control so
monitoring keeps working at saturation.
"""

import json
import os
import threading
import time

from repro.obs import explain
from repro.query.term import Query
from repro.serving.admission import (
    REJECT_DRAINING,
    AdmissionController,
)
from repro.serving.rwlock import ReadWriteLock

#: Endpoints that pass through admission control (the work-bearing
#: ones); monitoring and lifecycle endpoints bypass it by design.
ADMITTED_ENDPOINTS = ("search", "search_many", "explain", "add_documents")


def parse_term(text):
    """``context:search`` -> a ``(context, search)`` pair."""
    if ":" in text:
        context, search = text.split(":", 1)
    else:
        context, search = "*", text
    return context.strip() or "*", search.strip() or "*"


def parse_query_line(line):
    """One query-line string -> a list of ``(context, search)`` pairs."""
    return [
        parse_term(piece.strip())
        for piece in line.split(";;")
        if piece.strip()
    ]


def parse_query_payload(value):
    """A wire-form query (string or pair list) -> a ``Query``."""
    if isinstance(value, str):
        pairs = parse_query_line(value)
        if not pairs:
            raise ValueError(f"query string {value!r} holds no terms")
        return Query.parse(pairs)
    if isinstance(value, (list, tuple)):
        return Query.parse([tuple(pair) for pair in value])
    raise ValueError(
        f"a query is a string or a list of [context, search] pairs, "
        f"not {type(value).__name__}"
    )


def result_to_dict(result):
    """One :class:`~repro.search.result.ResultTuple`, JSON-clean.

    Scores serialize through ``repr``-exact floats, so two servers (or
    a server and an offline rebuild) that agree produce byte-identical
    JSON -- the serving equality gates compare these dictionaries
    directly.
    """
    return {
        "node_ids": list(result.node_ids),
        "content_scores": list(result.content_scores),
        "compactness": result.compactness,
        "score": result.score,
    }


def load_serving_system(path):
    """Load the system to serve: snapshot file or sharded directory.

    Either way the load replays any write-ahead log beside the
    snapshot and leaves durability attached, so the served system is
    exactly what a crash-recovered restart would see.
    """
    if os.path.isdir(path):
        from repro.shard import ShardedSeda

        return ShardedSeda.load(path)
    from repro.system import Seda

    return Seda.load(path)


class _Response:
    """One endpoint outcome: status, JSON payload (or text), headers."""

    __slots__ = ("status", "payload", "headers", "text")

    def __init__(self, status, payload=None, headers=None, text=None):
        self.status = status
        self.payload = payload
        self.headers = dict(headers or {})
        self.text = text

    def body(self):
        """The encoded response body (JSON unless ``text`` was set)."""
        if self.text is not None:
            return self.text.encode("utf-8"), "text/plain; charset=utf-8"
        data = json.dumps(self.payload, sort_keys=True, indent=None,
                          separators=(",", ":"))
        return data.encode("utf-8"), "application/json"


class ServingApp:
    """Endpoint logic, lifecycle, and shared state of one server."""

    def __init__(self, system, snapshot_path, *, workers=4,
                 max_inflight=64, per_client=16, retry_after=1,
                 slow_threshold=0.1, debug=False):
        self.snapshot_path = os.fspath(snapshot_path)
        self.workers = workers
        self.lock = ReadWriteLock()
        self.admission = AdmissionController(
            max_inflight=max_inflight, per_client=per_client,
            retry_after=retry_after,
        )
        self.slow_threshold = slow_threshold
        #: ``debug=True`` honors the ``X-Repro-Test-Delay`` header
        #: (sleep inside the admitted section) -- the deterministic
        #: hook the admission-control tests use to hold a slot open.
        #: Never enabled by the CLI.
        self.debug = debug
        self.state = "serving"  # serving -> draining -> drained
        self._state_lock = threading.Lock()
        self._explain_lock = threading.Lock()
        self._started = time.monotonic()
        self.requests_total = {}
        self._counter_lock = threading.Lock()
        #: Set by the HTTP server: called (once) after the drain
        #: response is written, to stop accepting connections.
        self.on_drained = None
        self._attach(system)

    def _attach(self, system):
        """Wire a (re)loaded system in: service, registry, topology."""
        from repro.shard import ShardedSeda

        self.system = system
        self.sharded = isinstance(system, ShardedSeda)
        self.registry = system.enable_observability(
            slow_threshold=self.slow_threshold
        )
        self.service = system.query_service(workers=self.workers)

    # -- introspection --------------------------------------------------------

    def document_count(self):
        if self.sharded:
            return self.system.document_count
        return len(self.system.collection.documents)

    def generation(self):
        """An opaque, JSON-clean token naming the served index
        generation: queries answered under one token are mutually
        consistent.  Unsharded: the graph version; sharded: the
        per-shard versions plus the recovery and routing epochs."""
        if self.sharded:
            versions, recovery, routing = self.service._versions()
            return [list(versions), recovery, routing]
        return self.system.graph.version

    def uptime(self):
        return time.monotonic() - self._started

    def _count(self, endpoint):
        with self._counter_lock:
            self.requests_total[endpoint] = (
                self.requests_total.get(endpoint, 0) + 1
            )

    # -- the dispatcher -------------------------------------------------------

    def handle(self, method, path, body=None, client="-", params=None,
               test_delay=None):
        """Serve one request; returns a :class:`_Response`.

        ``body`` is the decoded JSON payload (or ``None``), ``client``
        the admission identity, ``params`` the query-string dict.
        Never raises for request-level problems -- malformed input is a
        400, unknown paths 404, wrong methods 405, races with the
        lifecycle 409/503 -- so the HTTP layer stays a dumb pipe.
        """
        params = params or {}
        route = self._ROUTES.get(path)
        if route is None:
            return _Response(404, {"error": f"no such endpoint: {path}"})
        expected_method, endpoint, admitted = route
        if method != expected_method:
            return _Response(
                405,
                {"error": f"{path} expects {expected_method}, got {method}"},
                headers={"Allow": expected_method},
            )
        self._count(endpoint)
        if not admitted:
            return self._dispatch(endpoint, body, params)
        decision = self.admission.admit(client)
        if not decision:
            if decision.reason == REJECT_DRAINING:
                # A drain is usually a rolling restart, not a
                # disappearance: well-behaved clients should back off
                # and retry the (re)started server, so the 503 carries
                # Retry-After exactly like the 429 path.
                return _Response(
                    503,
                    {
                        "error": "server is draining",
                        "reason": decision.reason,
                        "retry_after": decision.retry_after,
                    },
                    headers={"Retry-After": str(decision.retry_after)},
                )
            return _Response(
                429,
                {
                    "error": "too many requests",
                    "reason": decision.reason,
                    "retry_after": decision.retry_after,
                },
                headers={"Retry-After": str(decision.retry_after)},
            )
        try:
            if self.debug and test_delay:
                time.sleep(float(test_delay))
            return self._dispatch(endpoint, body, params)
        finally:
            self.admission.release(client)

    def _dispatch(self, endpoint, body, params):
        handler = getattr(self, f"_endpoint_{endpoint}")
        try:
            return handler(body or {}, params)
        except (ValueError, KeyError, TypeError) as error:
            return _Response(400, {"error": str(error)})

    # -- serving endpoints ----------------------------------------------------

    def _endpoint_search(self, body, params):
        query = parse_query_payload(body["query"])
        k = int(body.get("k", 10))
        with self.lock.read():
            generation = self.generation()
            results, stats = self.service.execute(query, k=k)
        return _Response(200, {
            "results": [result_to_dict(result) for result in results],
            "k": k,
            "generation": generation,
            "cache_hit": bool(stats.cache_hit),
            "latency": stats.latency,
        })

    def _endpoint_search_many(self, body, params):
        queries = [parse_query_payload(value) for value in body["queries"]]
        k = int(body.get("k", 10))
        with self.lock.read():
            generation = self.generation()
            results, stats = self.service.execute_batch(queries, k=k)
        return _Response(200, {
            "results": [
                [result_to_dict(result) for result in per_query]
                for per_query in results
            ],
            "k": k,
            "generation": generation,
            "cache_hits": [
                bool(entry.cache_hit) for entry in stats.per_query
            ],
            "wall": stats.wall_time,
        })

    def _endpoint_explain(self, body, params):
        query = parse_query_payload(body["query"])
        k = int(body.get("k", 10))
        with self.lock.read():
            # The facade searchers carry per-query mutable stats, so
            # explains are serialized among themselves (they still run
            # concurrently with ordinary searches, which use the
            # service's worker pool).
            with self._explain_lock:
                if self.sharded:
                    reports = [
                        explain(shard.topk, query, k=k).as_dict()
                        for shard in self.system.shards
                    ]
                    payload = {"sharded": True, "per_shard": reports}
                else:
                    payload = explain(self.system.topk, query, k=k).as_dict()
        return _Response(200, payload)

    def _endpoint_add_documents(self, body, params):
        documents = body["documents"]
        if not isinstance(documents, list) or not documents:
            raise ValueError(
                "add_documents needs a non-empty 'documents' list of "
                "[name_or_null, xml] pairs"
            )
        pairs = []
        for entry in documents:
            if isinstance(entry, str):
                pairs.append(entry)
            else:
                name, xml = entry
                pairs.append((name, xml))
        specs = self._value_link_specs(body.get("value_links"))
        with self.lock.write():
            added = self.system.add_documents(pairs, value_links=specs)
            generation = self.generation()
            total = self.document_count()
        return _Response(200, {
            "added": len(added),
            "documents": total,
            "generation": generation,
        })

    @staticmethod
    def _value_link_specs(payloads):
        if not payloads:
            return None
        from repro.model.links import ValueLinkSpec

        return [ValueLinkSpec.from_dict(payload) for payload in payloads]

    # -- monitoring endpoints -------------------------------------------------

    def _endpoint_healthz(self, body, params):
        with self._state_lock:
            state = self.state
        return _Response(200, {
            "status": state,
            "sharded": self.sharded,
            "documents": self.document_count(),
            "generation": self.generation(),
            "inflight": self.admission.inflight,
            "uptime_seconds": self.uptime(),
            "snapshot": self.snapshot_path,
        })

    def _endpoint_metrics(self, body, params):
        metrics = {
            "server": {
                "state": self.state,
                "uptime_seconds": self.uptime(),
                "requests_total": dict(self.requests_total),
                "documents": self.document_count(),
            },
            "admission": self.admission.counters(),
            "registry": self.registry.metrics(),
        }
        if params.get("format") == "json":
            return _Response(200, metrics)
        return _Response(200, text=render_prometheus(metrics))

    # -- lifecycle endpoints --------------------------------------------------

    def _endpoint_drain(self, body, params):
        with self._state_lock:
            if self.state != "serving":
                return _Response(
                    409, {"error": f"server is already {self.state}"}
                )
            self.state = "draining"
        # Quiesce: no new admissions, wait out the in-flight requests
        # (this request bypassed admission, so idle means zero).
        self.admission.begin_drain()
        self.admission.wait_idle(leftover=0)
        with self.lock.write():
            # The snapshot commit absorbs every WAL batch and truncates
            # the log -- the directory the process leaves behind is
            # exactly what `repro fsck` calls clean.
            self.system.save(self.snapshot_path)
            documents = self.document_count()
        with self._state_lock:
            self.state = "drained"
        return _Response(200, {
            "drained": True,
            "snapshot": self.snapshot_path,
            "documents": documents,
        }, headers={"Connection": "close"})

    def _endpoint_reload(self, body, params):
        with self._state_lock:
            if self.state != "serving":
                return _Response(
                    409, {"error": f"server is {self.state}; cannot reload"}
                )
        with self.lock.write():
            old = self.system
            system = load_serving_system(self.snapshot_path)
            # The old system's WAL handle must not outlive the swap:
            # two appenders on one log would interleave records.
            if getattr(old, "_wal", None) is not None:
                old._wal.close()
            self._attach(system)
            documents = self.document_count()
            generation = self.generation()
        return _Response(200, {
            "reloaded": True,
            "snapshot": self.snapshot_path,
            "documents": documents,
            "generation": generation,
        })

    def _endpoint_rebalance(self, body, params):
        """Online topology change: split/merge/rebalance under traffic.

        Runs the rewrite under the write lock, so in-flight reads
        finish against the old topology and every later read runs
        against the new one -- the routing epoch inside the generation
        token keeps the two regimes distinguishable while answers stay
        byte-identical (placement independence).
        """
        if not self.sharded:
            return _Response(
                400, {"error": "topology operations need a sharded system"}
            )
        with self._state_lock:
            if self.state != "serving":
                return _Response(
                    409, {"error": f"server is {self.state}; cannot "
                          "change topology"}
                )
        op = body.get("op")
        with self.lock.write():
            if op == "split":
                summary = self.system.split(int(body["shard"]))
            elif op == "merge":
                summary = self.system.merge(int(body["a"]), int(body["b"]))
            elif op == "rebalance":
                if "moves" in body:
                    plan = {"moves": body["moves"]}
                else:
                    plan = self.system.propose_rebalance(
                        metric=body.get("metric", "documents")
                    )
                summary = self.system.rebalance(plan)
            else:
                raise ValueError(
                    "rebalance op must be 'split', 'merge', or "
                    f"'rebalance', not {op!r}"
                )
            summary["generation"] = self.generation()
        return _Response(200, summary)

    #: path -> (method, endpoint name, passes through admission).
    _ROUTES = {
        "/search": ("POST", "search", True),
        "/search_many": ("POST", "search_many", True),
        "/explain": ("POST", "explain", True),
        "/add_documents": ("POST", "add_documents", True),
        "/healthz": ("GET", "healthz", False),
        "/metrics": ("GET", "metrics", False),
        "/admin/drain": ("POST", "drain", False),
        "/admin/reload": ("POST", "reload", False),
        "/admin/rebalance": ("POST", "rebalance", False),
    }

    def __repr__(self):
        return (
            f"ServingApp({self.snapshot_path!r}, state={self.state}, "
            f"sharded={self.sharded}, documents={self.document_count()})"
        )


def _escape_label(value):
    """Prometheus label-value escaping (backslash, quote, newline)."""
    return (
        str(value)
        .replace("\\", r"\\")
        .replace('"', r'\"')
        .replace("\n", r"\n")
    )


def render_prometheus(metrics):
    """The ``/metrics`` text exposition, from the JSON metrics tree.

    Plain Prometheus text format (no client library -- the repo vendors
    nothing): server counters, admission state, and the retained
    per-fingerprint statistics of the
    :class:`~repro.obs.registry.StatsRegistry`.
    """
    server = metrics["server"]
    admission = metrics["admission"]
    registry = metrics["registry"]
    lines = [
        "# TYPE repro_uptime_seconds gauge",
        f"repro_uptime_seconds {server['uptime_seconds']:.3f}",
        "# TYPE repro_documents gauge",
        f"repro_documents {server['documents']}",
        "# TYPE repro_requests_total counter",
    ]
    for endpoint in sorted(server["requests_total"]):
        lines.append(
            f'repro_requests_total{{endpoint="{_escape_label(endpoint)}"}} '
            f"{server['requests_total'][endpoint]}"
        )
    lines += [
        "# TYPE repro_admission_inflight gauge",
        f"repro_admission_inflight {admission['inflight']}",
        "# TYPE repro_admission_admitted_total counter",
        f"repro_admission_admitted_total {admission['admitted_total']}",
        "# TYPE repro_admission_rejected_total counter",
    ]
    for reason in sorted(admission["rejected"]):
        lines.append(
            f'repro_admission_rejected_total{{reason="'
            f'{_escape_label(reason)}"}} {admission["rejected"][reason]}'
        )
    lines += [
        "# TYPE repro_queries_total counter",
        f"repro_queries_total {registry['total_queries']}",
        "# TYPE repro_query_count counter",
        "# TYPE repro_query_cache_hits counter",
        "# TYPE repro_query_latency_seconds summary",
    ]
    for fingerprint in sorted(registry["fingerprints"]):
        row = registry["fingerprints"][fingerprint]
        label = f'fingerprint="{_escape_label(fingerprint)}"'
        lines.append(f"repro_query_count{{{label}}} {row['count']}")
        lines.append(
            f"repro_query_cache_hits{{{label}}} {row['cache_hits']}"
        )
        for quantile in ("p50", "p95", "p99"):
            lines.append(
                f'repro_query_latency_seconds{{{label},quantile='
                f'"{quantile}"}} {row[quantile]:.6f}'
            )
    return "\n".join(lines) + "\n"
