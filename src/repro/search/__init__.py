"""Top-k search unit (Section 4).

SEDA "employs a top-k search algorithm based on the family of threshold
algorithms (TA)" that "retrieves the results from full-text indexes and
calculates top answers according to a ranking function which takes into
account both the content score as well as the structural properties of
the matched nodes".

* :class:`ScoringModel` -- content score (tf-idf over node text) times
  the structural *compactness* of the graph connecting the tuple.
* :class:`TopKSearcher` -- the TA-style algorithm over per-term
  score-ordered streams with early termination.
* :class:`NaiveSearcher` -- exhaustive enumeration, used as the
  correctness oracle and benchmark baseline.
* :class:`ResultTuple` -- one scored m-tuple of nodes (Definition 4).
"""

from repro.search.naive import NaiveSearcher
from repro.search.result import ResultTuple
from repro.search.scoring import ScoringModel
from repro.search.topk import TopKSearcher

__all__ = ["NaiveSearcher", "ResultTuple", "ScoringModel", "TopKSearcher"]
