"""Result tuples: scored m-tuples of data nodes (Definition 4)."""


class ResultTuple:
    """One query answer: node ids in query-term order, plus scores.

    ``content_scores[i]`` is the content relevance of ``node_ids[i]``
    for term ``i``; ``compactness`` reflects the structural tightness of
    the connecting graph; ``score`` is the combined rank key.
    """

    __slots__ = ("node_ids", "content_scores", "compactness", "score")

    def __init__(self, node_ids, content_scores, compactness, score):
        self.node_ids = tuple(node_ids)
        self.content_scores = tuple(content_scores)
        self.compactness = compactness
        self.score = score

    def __eq__(self, other):
        if not isinstance(other, ResultTuple):
            return NotImplemented
        return self.node_ids == other.node_ids

    def __hash__(self):
        return hash(self.node_ids)

    def __repr__(self):
        return f"ResultTuple(nodes={self.node_ids}, score={self.score:.4f})"

    def describe(self, collection):
        """Human-readable rendering: (path, content) per node."""
        parts = []
        for node_id in self.node_ids:
            node = collection.node(node_id)
            content = collection.content(node_id)
            if len(content) > 40:
                content = content[:37] + "..."
            parts.append(f"{node.path}={content!r}")
        return f"[{self.score:.4f}] " + " | ".join(parts)
