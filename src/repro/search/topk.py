"""Threshold-algorithm top-k search over per-term score streams.

The classic TA of Fagin, Lotem and Naor [8], adapted to graph tuples as
in the paper's top-k unit:

* one sorted stream per query term, ordered by descending content score
  (drawn from the full-text index);
* sorted access round-robins across streams; every newly seen node is
  combined with already-seen partner nodes of the other terms to form
  candidate tuples, whose exact scores (content x compactness) come
  from random access to the data graph;
* the threshold is the score an unseen tuple could still reach: the
  combination of the current stream frontiers at perfect compactness.
  Once the k-th best tuple scores at or above the threshold, no unseen
  tuple can beat it and the search stops.

Partner enumeration is restricted to nodes in *reachable documents*
(same document, or one cross-document link away): compactness is
monotone in graph distance, and nodes further apart than ``max_hops``
cannot form a valid tuple at all (Definition 4 connectivity).
"""

import collections
import heapq
import itertools

from repro.search.result import ResultTuple


class TopKSearcher:
    """TA-style top-k evaluation of SEDA queries."""

    def __init__(self, matcher, scoring, partner_limit=200,
                 allow_repeats=False):
        self.matcher = matcher
        self.scoring = scoring
        self.partner_limit = partner_limit
        self.allow_repeats = allow_repeats
        self.stats = {}
        self._doc_reach = None
        self._reach_version = -1

    # -- public API -----------------------------------------------------------

    def search(self, query, k=10):
        """Return the top-``k`` :class:`ResultTuple` list, best first."""
        terms = query.terms
        # Reset stats before any work so that every entry -- including
        # queries that bail out on an empty stream below -- leaves this
        # query's numbers behind, never the previous query's.
        self.stats = {
            "sorted_accesses": 0,
            "tuples_scored": 0,
            "early_stop": False,
            "candidates": [],
        }
        streams = [self._stream(term) for term in terms]
        self.stats["candidates"] = [len(stream) for stream in streams]
        if any(not stream for stream in streams):
            return []
        if len(terms) == 1:
            return self._single_term(streams[0], terms, k)

        doc_reach = self._document_reachability()
        seen_by_doc = [collections.defaultdict(list) for _ in terms]
        seen_scores = [dict() for _ in terms]
        frontiers = [stream[0][0] for stream in streams]
        cursors = [0] * len(terms)
        heap = []  # min-heap of (score, tiebreak, ResultTuple)
        tried = set()
        exhausted = 0

        while exhausted < len(terms):
            exhausted = 0
            for i, stream in enumerate(streams):
                if cursors[i] >= len(stream):
                    exhausted += 1
                    continue
                score, node_id = stream[cursors[i]]
                cursors[i] += 1
                frontiers[i] = score
                self.stats["sorted_accesses"] += 1
                doc_id = self.matcher.collection.node(node_id).doc_id
                seen_scores[i][node_id] = score
                seen_by_doc[i][doc_id].append(node_id)
                self._combine(
                    i, node_id, score, terms, seen_by_doc, seen_scores,
                    doc_reach, tried, heap, k,
                )
            if len(heap) >= k:
                threshold = self.scoring.upper_bound(frontiers)
                if heap[0][0] >= threshold:
                    self.stats["early_stop"] = True
                    break

        results = [entry[2] for entry in heap]
        results.sort(key=lambda r: (-r.score, r.node_ids))
        return results

    # -- internals --------------------------------------------------------------

    def _stream(self, term):
        """Sorted (content_score desc, node_id) access stream for a term."""
        scored = []
        for node_id in self.matcher.candidates(term):
            score = self.scoring.content_score(node_id, term)
            if score > 0.0:
                scored.append((score, node_id))
        scored.sort(key=lambda pair: (-pair[0], pair[1]))
        return scored

    def _single_term(self, stream, terms, k):
        """One-term queries need no combination: stream order is final.

        Compactness of a singleton is 1, so the combined score is the
        content score and the stream is already the answer.
        """
        results = []
        for score, node_id in stream[: k if k is not None else None]:
            combined = self.scoring.combine([score], 1.0)
            results.append(ResultTuple((node_id,), (score,), 1.0, combined))
        self.stats["early_stop"] = len(stream) > len(results)
        return results

    def _document_reachability(self):
        """doc_id -> set of doc_ids reachable via one link edge.

        Cached across queries and keyed on the graph's monotonic
        :attr:`~repro.model.graph.DataGraph.version`, so *any* edge
        mutation invalidates it -- not only mutations that happen to
        change the edge count.  Recomputing this map per query used to
        dominate repeated-search workloads on link-heavy collections.
        """
        version = self.scoring.graph.version
        if self._doc_reach is None or self._reach_version != version:
            reach = collections.defaultdict(set)
            collection = self.matcher.collection
            for edge in self.scoring.graph.edges:
                source_doc = collection.node(edge.source_id).doc_id
                target_doc = collection.node(edge.target_id).doc_id
                if source_doc != target_doc:
                    reach[source_doc].add(target_doc)
                    reach[target_doc].add(source_doc)
            self._doc_reach = reach
            self._reach_version = version
        return self._doc_reach

    def warm(self):
        """Precompute the shared read-only caches this searcher uses.

        Builds the document-reachability map and the scoring model's
        per-document edge index for the current graph version.  The
        query service calls this once before dispatching work so that
        concurrent workers only ever *read* the shared structures.
        """
        self._document_reachability()
        self.scoring._edge_index()
        return self

    def share_read_caches(self, source):
        """Adopt ``source``'s computed document-reachability cache.

        The map is read-only during search, so worker searchers in a
        query service share one instance instead of each building an
        identical copy.
        """
        self._doc_reach = source._doc_reach
        self._reach_version = source._reach_version
        return self

    def _partners(self, j, docs, seen_by_doc, seen_scores):
        """Highest-scoring seen nodes of term ``j`` within ``docs``."""
        partners = []
        for doc_id in docs:
            partners.extend(seen_by_doc[j].get(doc_id, ()))
        if len(partners) > self.partner_limit:
            # Tie-break by node id so that which tied-score partners
            # survive the cap never depends on stream arrival order.
            partners.sort(
                key=lambda node_id: (-seen_scores[j][node_id], node_id)
            )
            partners = partners[: self.partner_limit]
        return partners

    def _combine(self, i, node_id, score, terms, seen_by_doc, seen_scores,
                 doc_reach, tried, heap, k):
        """Form and score all tuples that include the newly seen node."""
        collection = self.matcher.collection
        doc_id = collection.node(node_id).doc_id
        docs = {doc_id} | doc_reach.get(doc_id, set())
        partner_lists = []
        for j in range(len(terms)):
            if j == i:
                partner_lists.append([node_id])
                continue
            partners = self._partners(j, docs, seen_by_doc, seen_scores)
            if not partners:
                return
            partner_lists.append(partners)
        for combo in itertools.product(*partner_lists):
            if not self.allow_repeats and len(set(combo)) < len(combo):
                continue
            if combo in tried:
                continue
            tried.add(combo)
            content_scores = [
                seen_scores[j].get(combo[j])
                if combo[j] in seen_scores[j]
                else self.scoring.content_score(combo[j], terms[j])
                for j in range(len(terms))
            ]
            scored = self.scoring.score_tuple(
                combo, terms, content_scores=content_scores
            )
            self.stats["tuples_scored"] += 1
            if scored is None:
                continue
            total, contents, compactness = scored
            entry = (
                total,
                tuple(-nid for nid in combo),
                ResultTuple(combo, contents, compactness, total),
            )
            if k is None or len(heap) < k:
                heapq.heappush(heap, entry)
            elif (total, entry[1]) > (heap[0][0], heap[0][1]):
                # Compare the tiebreak too, not just the score: among
                # equal-score tuples the survivor must be decided by the
                # deterministic key (lexicographically smaller node ids
                # win), never by stream arrival order.
                heapq.heapreplace(heap, entry)
