"""Threshold-algorithm top-k search over per-term score streams.

The classic TA of Fagin, Lotem and Naor [8], adapted to graph tuples as
in the paper's top-k unit:

* one sorted stream per query term, ordered by descending content score
  (drawn from the full-text index);
* sorted access round-robins across streams; every newly seen node is
  combined with already-seen partner nodes of the other terms to form
  candidate tuples, whose exact scores (content x compactness) come
  from random access to the data graph;
* the threshold is the score a not-yet-formed tuple could still
  reach -- the rank-join *corner bound*: such a tuple has at least one
  member unseen in its stream (bounded by that frontier) while its
  other members may be anything already seen (bounded by the stream
  maxima), so the threshold is the max over which position is the
  unseen one, at perfect compactness.  (The plain all-frontiers
  combination is NOT a bound here: it misses tuples pairing a seen
  high scorer with an unseen partner.)  Once the k-th best tuple
  scores at or above the threshold, no unformed tuple can beat it and
  the search stops.

Partner enumeration is restricted to nodes in *reachable documents*
(same document, or one cross-document link away): compactness is
monotone in graph distance, and nodes further apart than ``max_hops``
cannot form a valid tuple at all (Definition 4 connectivity).

Hot-path engineering on top of the paper's algorithm:

* **Impact streams** -- a term's stream is built once per graph
  version, stored columnar in an :class:`ImpactStreamStore` (shared
  across workers, persisted through snapshots), and thereafter sorted
  access is an index into two flat arrays instead of a re-analysis of
  every candidate's text.
* **Bound-based pruning** -- before a candidate tuple's structural
  distances are computed, its upper bound (the mean of its known
  content scores at the best compactness ``m`` distinct nodes can
  reach, ``1/m``) is compared to the current k-th heap score; a combo
  that cannot strictly beat it is counted in ``stats["pruned"]`` and
  skipped.  Only strictly-worse bounds are pruned, so tied tuples
  still reach the deterministic tie-break and answers are unchanged.
  The TA stopping threshold keeps the seed's compactness-1 cap (on
  top of the corner bound above).

Both optimizations are disabled when the scoring model runs with
``precomputed=False`` -- the benchmark equivalence baseline that
recomputes everything per query, seed-style.

Scatter-gather support: ``search`` accepts an optional
:class:`SharedBound` -- a monotone lower bound on the k-th best score
*across every shard of a sharded collection*.  The searcher publishes
its own k-th heap score into the bound and prunes (and early-stops)
against it exactly as it does against the local heap: only strictly
worse candidates are dropped, so the merged cross-shard top-k is
unchanged (see :mod:`repro.shard`).
"""

import collections
import heapq
import itertools
import threading

from repro.index.streams import ImpactStream, ImpactStreamStore
from repro.search.result import ResultTuple

#: Sentinel for inline distance-memo probes (None is a cached value).
_MISSING = object()

_NEG_INF = float("-inf")


class SharedBound:
    """A monotone lower bound on the global k-th best score.

    One instance is shared by every per-shard searcher answering the
    same query: each publishes its local k-th heap score via
    :meth:`offer`, and all of them prune candidate tuples whose upper
    bound falls *strictly* below :attr:`value`.  Any published value is
    the k-th best of some subset of the corpus's tuples, hence at most
    the final global k-th score -- so strictly-below-bound pruning can
    never evict a tuple from the merged top-k, ties included.

    Reads are lock-free (one attribute load); :meth:`offer` takes a
    lock only when it would actually raise the bound, so the racy
    fast-path check never lets the value move downward.
    """

    __slots__ = ("_lock", "value")

    def __init__(self):
        self._lock = threading.Lock()
        self.value = _NEG_INF

    def offer(self, score):
        """Raise the bound to ``score`` if it is an improvement."""
        if score > self.value:
            with self._lock:
                if score > self.value:
                    self.value = score
        return self.value

    def __repr__(self):
        return f"SharedBound({self.value})"


class TopKSearcher:
    """TA-style top-k evaluation of SEDA queries."""

    def __init__(self, matcher, scoring, partner_limit=200,
                 allow_repeats=False, streams=None):
        self.matcher = matcher
        self.scoring = scoring
        self.partner_limit = partner_limit
        self.allow_repeats = allow_repeats
        #: Shared per-term stream cache.  Pass the system's store so
        #: every searcher over the same indexes reuses one set of
        #: streams; a private store is created otherwise.
        self.streams = streams if streams is not None else ImpactStreamStore()
        self.stats = {}
        self._doc_reach = None
        self._reach_version = -1

    # -- public API -----------------------------------------------------------

    def search(self, query, k=10, shared_bound=None):
        """Return the top-``k`` :class:`ResultTuple` list, best first.

        ``shared_bound`` is the cross-shard :class:`SharedBound` used
        by scatter-gather search; leave it ``None`` (the default) for a
        standalone system -- behavior is then exactly the classic TA.
        """
        if k is not None and k <= 0:
            # An empty answer set; without this guard the stopping
            # logic would treat a 0-capacity heap as full and index
            # into it.
            self.stats = {
                "sorted_accesses": 0,
                "tuples_scored": 0,
                "pruned": 0,
                "early_stop": True,
                "candidates": [],
                "per_term_accesses": [],
                "path": None,
                "stop_reason": "k-zero",
            }
            return []
        terms = query.terms
        # Reset stats before any work so that every entry -- including
        # queries that bail out on an empty stream below -- leaves this
        # query's numbers behind, never the previous query's.
        self.stats = {
            "sorted_accesses": 0,
            "tuples_scored": 0,
            "pruned": 0,
            "early_stop": False,
            "candidates": [],
            "per_term_accesses": [],
            "path": None,
            "stop_reason": None,
        }
        streams = [self._stream(term) for term in terms]
        self.stats["candidates"] = [len(stream) for stream in streams]
        self.stats["per_term_accesses"] = [0] * len(terms)
        self.stats["path"] = self._path_name(terms)
        if any(len(stream) == 0 for stream in streams):
            self.stats["stop_reason"] = "empty-stream"
            return []
        if len(terms) == 1:
            return self._single_term(streams[0], terms, k)

        doc_reach = self._document_reachability()
        seen_by_doc = [collections.defaultdict(list) for _ in terms]
        seen_scores = [dict() for _ in terms]
        frontiers = [stream.scores[0] for stream in streams]
        # Stream maxima (first element of each impact-sorted stream):
        # the corner-bound stopping threshold needs the best score a
        # *seen* partner can contribute, which is the stream's top.
        maxima = [stream.scores[0] for stream in streams]
        cursors = [0] * len(terms)
        heap = []  # min-heap of (score, tiebreak, ResultTuple)
        exhausted = 0

        while exhausted < len(terms):
            exhausted = 0
            # Snapshot the cross-shard bound once per round: it only
            # ever rises, so a slightly stale read prunes less, never
            # wrongly.
            floor = (
                shared_bound.value if shared_bound is not None else _NEG_INF
            )
            for i, stream in enumerate(streams):
                cursor = cursors[i]
                if cursor >= len(stream):
                    exhausted += 1
                    continue
                score = stream.scores[cursor]
                node_id = stream.node_ids[cursor]
                cursors[i] += 1
                frontiers[i] = score
                self.stats["sorted_accesses"] += 1
                self.stats["per_term_accesses"][i] += 1
                doc_id = self.matcher.collection.node(node_id).doc_id
                seen_scores[i][node_id] = score
                seen_by_doc[i][doc_id].append(node_id)
                self._combine(
                    i, node_id, score, terms, seen_by_doc, seen_scores,
                    doc_reach, heap, k, floor,
                )
            if k is not None:
                local_best = _NEG_INF
                if len(heap) >= k:
                    local_best = heap[0][0]
                    if shared_bound is not None:
                        shared_bound.offer(local_best)
                imported = (
                    shared_bound.value if shared_bound is not None
                    else _NEG_INF
                )
                if local_best > _NEG_INF or imported > _NEG_INF:
                    # Rank-join corner bound: an unformed tuple has at
                    # least one member still unseen in its stream
                    # (score <= that frontier), while every other
                    # member is bounded by its stream's maximum -- the
                    # frontier alone does NOT bound tuples pairing an
                    # already-seen high scorer with an unseen partner.
                    # The max over which position is the unseen one,
                    # at the compactness-1 cap, bounds every tuple
                    # still formable, so stopping at it never drops a
                    # qualifying answer (and an m-node tuple's real
                    # compactness is <= 1/m, so its score is strictly
                    # below the bound -- ties cannot arise at it).
                    threshold = max(
                        self.scoring.upper_bound([
                            frontiers[i] if i == j else maxima[i]
                            for i in range(len(terms))
                        ])
                        for j in range(len(terms))
                    )
                    if (local_best >= threshold
                            or imported > threshold):
                        self.stats["early_stop"] = True
                        self.stats["stop_reason"] = "corner-bound"
                        break

        if self.stats["stop_reason"] is None:
            self.stats["stop_reason"] = "exhaustion"
        results = [entry[2] for entry in heap]
        results.sort(key=lambda r: (-r.score, r.node_ids))
        return results

    # -- internals --------------------------------------------------------------

    def _stream(self, term):
        """Impact-ordered stream for ``term``, cached per graph version.

        With precomputation on, the stream is built at most once per
        ``(term, graph version)`` across every searcher sharing the
        store; repeated queries get the columnar arrays back in O(1).
        """
        if not self.scoring.precomputed:
            return self._build_stream(term)
        version = self.scoring.graph.version
        key = term.cache_key()
        cached = self.streams.get(key, version)
        if cached is not None:
            return cached
        # Match-all streams (every context-matching node at score 1.0)
        # stay in memory but out of snapshots: cheap to rebuild, large
        # to store.
        return self.streams.put(
            key, version, self._build_stream(term),
            persist=not term.is_match_all,
        )

    def _build_stream(self, term):
        """Score and impact-sort a term's candidates (the slow build)."""
        scored = []
        for node_id in self.matcher.candidates(term):
            score = self.scoring.content_score(node_id, term)
            if score > 0.0:
                scored.append((score, node_id))
        return ImpactStream.from_scored(scored)

    def _single_term(self, stream, terms, k):
        """One-term queries need no combination: stream order is final.

        Compactness of a singleton is 1, so the combined score is the
        content score and the stream is already the answer.
        """
        results = []
        count = len(stream) if k is None else min(k, len(stream))
        for index in range(count):
            score = stream.scores[index]
            combined = self.scoring.combine([score], 1.0)
            results.append(
                ResultTuple(
                    (stream.node_ids[index],), (score,), 1.0, combined
                )
            )
        self.stats["early_stop"] = len(stream) > len(results)
        self.stats["stop_reason"] = (
            "k-satisfied" if self.stats["early_stop"] else "exhaustion"
        )
        return results

    def _path_name(self, terms):
        """Which combine implementation this query's shape selects.

        Mirrors the dispatch in :meth:`_combine` (``single`` needs no
        combination at all); recorded in ``stats["path"]`` so EXPLAIN
        can report it without re-deriving the dispatch rules.
        """
        if len(terms) == 1:
            return "single"
        plain_weights = (
            self.scoring.content_weight == 1.0
            and self.scoring.structure_weight == 1.0
        )
        if plain_weights and not self.allow_repeats:
            if len(terms) == 2:
                return "pair"
            if len(terms) == 3:
                return "triple"
        return "general"

    def _document_reachability(self):
        """doc_id -> set of doc_ids reachable via one link edge.

        Cached across queries and keyed on the graph's monotonic
        :attr:`~repro.model.graph.DataGraph.version`, so *any* edge
        mutation invalidates it -- not only mutations that happen to
        change the edge count.  Recomputing this map per query used to
        dominate repeated-search workloads on link-heavy collections.
        """
        version = self.scoring.graph.version
        if self._doc_reach is None or self._reach_version != version:
            reach = collections.defaultdict(set)
            collection = self.matcher.collection
            for edge in self.scoring.graph.edges:
                source_doc = collection.node(edge.source_id).doc_id
                target_doc = collection.node(edge.target_id).doc_id
                if source_doc != target_doc:
                    reach[source_doc].add(target_doc)
                    reach[target_doc].add(source_doc)
            self._doc_reach = reach
            self._reach_version = version
        return self._doc_reach

    def warm(self):
        """Precompute the shared read-only caches this searcher uses.

        Builds the document-reachability map and the scoring model's
        per-document edge index for the current graph version.  The
        query service calls this once before dispatching work so that
        concurrent workers only ever *read* the shared structures.
        (Impact streams warm lazily, term by term, on first use --
        their store is already shared.)
        """
        self._document_reachability()
        self.scoring._edge_index()
        return self

    def share_read_caches(self, source):
        """Adopt ``source``'s computed shared caches.

        Worker searchers in a query service share one instance of every
        read-only derived structure instead of each building identical
        copies: the document-reachability map, the impact-stream store,
        and -- when the workers carry separate scoring models -- the
        scoring side's per-document edge index and pair-distance memo.
        """
        self._doc_reach = source._doc_reach
        self._reach_version = source._reach_version
        self.streams = source.streams
        if self.scoring is not source.scoring:
            self.scoring.adopt_caches(source.scoring)
        return self

    def _combine_pair(self, i, node_id, score, seen_scores, partners,
                      heap, k, prune, floor):
        """The two-term hot loop, with tail pruning.

        Partners are visited in descending score order (ties by node
        id), so the candidate means only shrink along the loop: the
        first combo whose upper bound falls strictly below the pruning
        limit -- the k-th heap score or the cross-shard ``floor``,
        whichever is higher -- proves every remaining combo does too,
        and the whole tail is pruned at once.  The final heap holds the
        top-k combos under a strict total order (score, then node-id
        tiebreak), so visiting order changes no answer.  Distance memo
        hits are read inline (one dict probe) and reported to the
        scoring model's counters in bulk.
        """
        scoring = self.scoring
        stats = self.stats
        j = 1 - i
        scores_j = seen_scores[j]
        ordered = sorted(
            partners, key=lambda partner: (-scores_j[partner], partner)
        )
        cache = scoring.pair_cache() if scoring.precomputed else None
        memo_hits = 0
        for index, partner in enumerate(ordered):
            if partner == node_id:
                continue
            combo = (node_id, partner) if i == 0 else (partner, node_id)
            partner_score = scores_j[partner]
            mean = (score + partner_score) / 2
            if prune:
                limit = floor
                if len(heap) >= k and heap[0][0] > limit:
                    limit = heap[0][0]
                if mean * 0.5 < limit:
                    # Everything after this partner scores no better;
                    # count only combos that could actually have formed.
                    stats["pruned"] += sum(
                        1 for tail in ordered[index:] if tail != node_id
                    )
                    break
            if cache is None:
                distance = scoring.pair_distance(node_id, partner)
            else:
                key = (
                    (node_id, partner) if node_id <= partner
                    else (partner, node_id)
                )
                distance = cache.get(key, _MISSING)
                if distance is _MISSING:
                    distance = scoring.pair_distance(node_id, partner)
                else:
                    memo_hits += 1
            stats["tuples_scored"] += 1
            if distance is None:
                continue
            total = mean * (1.0 / (1.0 + distance))
            if k is None or len(heap) < k:
                content_scores = (
                    (score, partner_score) if i == 0
                    else (partner_score, score)
                )
                entry = (
                    total,
                    (-combo[0], -combo[1]),
                    ResultTuple(
                        combo, content_scores,
                        1.0 / (1.0 + distance), total,
                    ),
                )
                heapq.heappush(heap, entry)
            elif total >= heap[0][0]:
                tiebreak = (-combo[0], -combo[1])
                if (total, tiebreak) > (heap[0][0], heap[0][1]):
                    content_scores = (
                        (score, partner_score) if i == 0
                        else (partner_score, score)
                    )
                    heapq.heapreplace(
                        heap,
                        (
                            total,
                            tiebreak,
                            ResultTuple(
                                combo, content_scores,
                                1.0 / (1.0 + distance), total,
                            ),
                        ),
                    )
        if memo_hits:
            scoring.pair_hits += memo_hits

    def _combine_triple(self, i, node_id, score, seen_scores, partner_lists,
                        heap, k, prune, floor):
        """The three-term hot loop: nested descending-order iteration.

        Same shape as :meth:`_combine_pair`, one level deeper: both
        partner lists are visited in descending score order, so a
        failing bound prunes the rest of the inner list, and a bound
        that fails even against the inner list's *best* score prunes
        every remaining outer partner as well.  Means are accumulated
        in term order (IEEE addition is not associative), so totals are
        bit-identical to the generic path.
        """
        scoring = self.scoring
        stats = self.stats
        j1, j2 = (j for j in range(3) if j != i)
        scores_1, scores_2 = seen_scores[j1], seen_scores[j2]
        first = sorted(
            partner_lists[j1], key=lambda p: (-scores_1[p], p)
        )
        second = sorted(
            partner_lists[j2], key=lambda p: (-scores_2[p], p)
        )
        best_second = scores_2[second[0]]
        cache = scoring.pair_cache() if scoring.precomputed else None
        memo_hits = 0
        third = 1.0 / 3.0
        for outer_index, a in enumerate(first):
            if a == node_id:
                continue
            score_a = scores_1[a]
            if prune:
                limit = floor
                if len(heap) >= k and heap[0][0] > limit:
                    limit = heap[0][0]
            else:
                limit = _NEG_INF
            if limit > _NEG_INF:
                # Even paired with the inner list's best partner this
                # outer partner cannot reach the pruning limit; the
                # remaining (lower-scored) outer partners cannot
                # either.  The mean is formed in term order below; for
                # the bound the max over permutations is what matters,
                # and addition is commutative, so this test is exact.
                best_mean = (
                    (score + score_a + best_second) / 3 if i == 0
                    else (score_a + score + best_second) / 3 if i == 1
                    else (score_a + best_second + score) / 3
                )
                if best_mean * third < limit:
                    # Count only combos that could actually have
                    # formed: exclude the new node and a == b repeats.
                    second_set = set(second)
                    base = len(second) - (node_id in second_set)
                    for tail in first[outer_index:]:
                        if tail != node_id:
                            stats["pruned"] += base - (tail in second_set)
                    break
            for inner_index, b in enumerate(second):
                if b == node_id or b == a:
                    continue
                score_b = scores_2[b]
                if i == 0:
                    combo = (node_id, a, b)
                    mean = (score + score_a + score_b) / 3
                elif i == 1:
                    combo = (a, node_id, b)
                    mean = (score_a + score + score_b) / 3
                else:
                    combo = (a, b, node_id)
                    mean = (score_a + score_b + score) / 3
                if prune:
                    limit = floor
                    if len(heap) >= k and heap[0][0] > limit:
                        limit = heap[0][0]
                    if mean * third < limit:
                        # Every later inner partner scores no better;
                        # count only combos that could actually have
                        # formed.
                        stats["pruned"] += sum(
                            1 for tail in second[inner_index:]
                            if tail != node_id and tail != a
                        )
                        break
                anchor = combo[0]
                other_1, other_2 = combo[1], combo[2]
                if cache is None:
                    distance_1 = scoring.pair_distance(anchor, other_1)
                    distance_2 = (
                        None if distance_1 is None
                        else scoring.pair_distance(anchor, other_2)
                    )
                else:
                    key = (
                        (anchor, other_1) if anchor <= other_1
                        else (other_1, anchor)
                    )
                    distance_1 = cache.get(key, _MISSING)
                    if distance_1 is _MISSING:
                        distance_1 = scoring.pair_distance(anchor, other_1)
                    else:
                        memo_hits += 1
                    if distance_1 is None:
                        distance_2 = None
                    else:
                        key = (
                            (anchor, other_2) if anchor <= other_2
                            else (other_2, anchor)
                        )
                        distance_2 = cache.get(key, _MISSING)
                        if distance_2 is _MISSING:
                            distance_2 = scoring.pair_distance(
                                anchor, other_2
                            )
                        else:
                            memo_hits += 1
                stats["tuples_scored"] += 1
                if distance_1 is None or distance_2 is None:
                    continue
                compactness = 1.0 / (1.0 + (distance_1 + distance_2))
                total = mean * compactness
                if k is None or len(heap) < k:
                    contents = (
                        (score, score_a, score_b) if i == 0
                        else (score_a, score, score_b) if i == 1
                        else (score_a, score_b, score)
                    )
                    entry = (
                        total,
                        (-combo[0], -combo[1], -combo[2]),
                        ResultTuple(combo, contents, compactness, total),
                    )
                    heapq.heappush(heap, entry)
                elif total >= heap[0][0]:
                    tiebreak = (-combo[0], -combo[1], -combo[2])
                    if (total, tiebreak) > (heap[0][0], heap[0][1]):
                        contents = (
                            (score, score_a, score_b) if i == 0
                            else (score_a, score, score_b) if i == 1
                            else (score_a, score_b, score)
                        )
                        heapq.heapreplace(
                            heap,
                            (
                                total,
                                tiebreak,
                                ResultTuple(
                                    combo, contents, compactness, total
                                ),
                            ),
                        )
        if memo_hits:
            scoring.pair_hits += memo_hits

    def _partners(self, j, docs, seen_by_doc, seen_scores):
        """Highest-scoring seen nodes of term ``j`` within ``docs``.

        The ``partner_limit`` cap selects from the *seen-so-far* set,
        which depends on stream interleaving -- so on corpora dense
        enough to hit the cap (> ``partner_limit`` same-term matches
        reachable from one node), runs over different stream layouts
        (a shard vs. the whole corpus) may truncate different
        partners.  The sharded merge-equivalence contract therefore
        excludes cap-saturated corpora; see ``docs/ARCHITECTURE.md``.
        """
        partners = []
        for doc_id in docs:
            partners.extend(seen_by_doc[j].get(doc_id, ()))
        if len(partners) > self.partner_limit:
            # Tie-break by node id so that which tied-score partners
            # survive the cap never depends on stream arrival order.
            partners.sort(
                key=lambda node_id: (-seen_scores[j][node_id], node_id)
            )
            partners = partners[: self.partner_limit]
        return partners

    def _combine(self, i, node_id, score, terms, seen_by_doc, seen_scores,
                 doc_reach, heap, k, floor=_NEG_INF):
        """Form and score all tuples that include the newly seen node.

        Every combo is formed exactly once across the whole search: the
        forming event is the arrival of its last member (at any earlier
        member's arrival the rest is missing from the seen tables), so
        no dedup bookkeeping is needed.

        This is the hottest loop in the system; the common shapes
        (two- and three-term queries at the default unit weights) take
        specialized paths with the scoring arithmetic inlined
        (``x ** 1.0 == x`` exactly, so the inline product is
        bit-identical to :meth:`ScoringModel.score_tuple`), partners in
        descending score order for tail pruning, and heap entries only
        materialized for combos that actually enter the heap.
        """
        collection = self.matcher.collection
        doc_id = collection.node(node_id).doc_id
        docs = {doc_id} | doc_reach.get(doc_id, set())
        m = len(terms)
        partner_lists = []
        for j in range(m):
            if j == i:
                partner_lists.append([node_id])
                continue
            partners = self._partners(j, docs, seen_by_doc, seen_scores)
            if not partners:
                return
            partner_lists.append(partners)
        scoring = self.scoring
        stats = self.stats
        allow_repeats = self.allow_repeats
        prune = scoring.precomputed and k is not None
        # m distinct nodes are pairwise at distance >= 1, so the star
        # approximation's size is at least m - 1 and compactness at most
        # 1/m; with repeats allowed nodes can coincide and the cap is 1.
        compactness_cap = 1.0 if allow_repeats else 1.0 / m
        plain_weights = (
            scoring.content_weight == 1.0 and scoring.structure_weight == 1.0
        )
        if plain_weights and not allow_repeats:
            if m == 2:
                self._combine_pair(
                    i, node_id, score, seen_scores,
                    partner_lists[1 - i], heap, k, prune, floor,
                )
                return
            if m == 3:
                self._combine_triple(
                    i, node_id, score, seen_scores, partner_lists,
                    heap, k, prune, floor,
                )
                return
        for combo in itertools.product(*partner_lists):
            if not allow_repeats and len(set(combo)) < len(combo):
                continue
            # Every combo member was drawn from the seen tables, so its
            # content score is already known -- a dict lookup, never a
            # recomputation.
            content_scores = [
                seen_scores[j][combo[j]] for j in range(m)
            ]
            if prune:
                limit = floor
                if len(heap) >= k and heap[0][0] > limit:
                    limit = heap[0][0]
            else:
                limit = _NEG_INF
            if plain_weights:
                mean = sum(content_scores) / m
                if limit > _NEG_INF:
                    # The true score is the bound shrunk by the actual
                    # compactness <= cap, so a bound strictly below the
                    # pruning limit (the k-th heap score or another
                    # shard's published bound) can never enter the
                    # merged top-k -- skip the (expensive) structural
                    # distance work entirely.  Bounds *equal* to the
                    # limit are not pruned: at cap compactness the
                    # tuple could still win on the deterministic
                    # tie-break.
                    if mean * compactness_cap < limit:
                        stats["pruned"] += 1
                        continue
                compactness = scoring.compactness(combo)
                stats["tuples_scored"] += 1
                if compactness is None:
                    continue
                total = mean * compactness
            else:
                if limit > _NEG_INF:
                    bound = scoring.upper_bound(
                        content_scores, compactness_cap
                    )
                    if bound < limit:
                        stats["pruned"] += 1
                        continue
                scored = scoring.score_tuple(
                    combo, terms, content_scores=content_scores
                )
                stats["tuples_scored"] += 1
                if scored is None:
                    continue
                total, content_scores, compactness = scored
            if k is None or len(heap) < k:
                entry = (
                    total,
                    tuple(-nid for nid in combo),
                    ResultTuple(combo, content_scores, compactness, total),
                )
                heapq.heappush(heap, entry)
            elif total >= heap[0][0]:
                # Compare the tiebreak too, not just the score: among
                # equal-score tuples the survivor must be decided by the
                # deterministic key (lexicographically smaller node ids
                # win), never by stream arrival order.
                tiebreak = tuple(-nid for nid in combo)
                if (total, tiebreak) > (heap[0][0], heap[0][1]):
                    heapq.heapreplace(
                        heap,
                        (
                            total,
                            tiebreak,
                            ResultTuple(
                                combo, content_scores, compactness, total
                            ),
                        ),
                    )
