"""Ranking function: content relevance x structural compactness.

"The score function is based on the compactness of the graph
representing a tuple of nodes satisfying query terms" combined with a
content score from the full-text indexes (Section 4).  Concretely::

    score(t) = mean_i(content_score(n_i, qt_i)) * compactness(t)
    compactness(t) = 1 / (1 + steiner_size(t))

where ``steiner_size`` approximates the number of edges needed to
connect the tuple's nodes in the data graph (0 for a single node, so a
one-term query ranks purely by content).  Tuples that cannot be
connected within ``max_hops`` violate Definition 4 and score ``None``.
"""


class ScoringModel:
    """Computes content scores, compactness, and combined tuple scores."""

    def __init__(self, collection, inverted, graph, max_hops=12,
                 content_weight=1.0, structure_weight=1.0):
        self.collection = collection
        self.inverted = inverted
        self.graph = graph
        self.max_hops = max_hops
        self.content_weight = content_weight
        self.structure_weight = structure_weight
        self._doc_edge_index = None
        self._indexed_version = -1

    # -- fast structural distances --------------------------------------------

    def _edge_index(self):
        """(doc_a, doc_b) -> [(source_id, target_id)] over link edges.

        Rebuilt when the graph mutated since the last use (keyed on
        :attr:`DataGraph.version`, so any mutation invalidates -- not
        just ones that change the edge count); keeps pair distance
        computation O(edges between the two documents) instead of a
        breadth-first search over the whole graph (link hubs such as
        frequently-referenced countries make BFS frontiers explode).
        """
        version = self.graph.version
        if self._doc_edge_index is None or self._indexed_version != version:
            index = {}
            for edge in self.graph.edges:
                source_doc = self.collection.node(edge.source_id).doc_id
                target_doc = self.collection.node(edge.target_id).doc_id
                index.setdefault((source_doc, target_doc), []).append(
                    (edge.source_id, edge.target_id)
                )
            self._doc_edge_index = index
            self._indexed_version = version
        return self._doc_edge_index

    def pair_distance(self, node_a, node_b):
        """Structural distance between two nodes, or ``None``.

        Same-document pairs use the exact Dewey tree distance;
        cross-document pairs take the best single-link route
        (tree hops to the link source, the link edge, tree hops from
        the link target).  Multi-link routes exceed any practical
        ``max_hops`` and are treated as disconnected for ranking.
        """
        first = self.collection.node(node_a)
        second = self.collection.node(node_b)
        if first.doc_id == second.doc_id:
            distance = first.dewey.tree_distance(second.dewey)
            return distance if distance <= self.max_hops else None
        index = self._edge_index()
        best = None
        for source_id, target_id in index.get(
            (first.doc_id, second.doc_id), ()
        ):
            candidate = self._route(first, second, source_id, target_id)
            if candidate is not None and (best is None or candidate < best):
                best = candidate
        for source_id, target_id in index.get(
            (second.doc_id, first.doc_id), ()
        ):
            candidate = self._route(second, first, source_id, target_id)
            if candidate is not None and (best is None or candidate < best):
                best = candidate
        if best is None or best > self.max_hops:
            return None
        return best

    def _route(self, first, second, source_id, target_id):
        source = self.collection.node(source_id)
        target = self.collection.node(target_id)
        return (
            first.dewey.tree_distance(source.dewey)
            + 1
            + target.dewey.tree_distance(second.dewey)
        )

    # -- content ------------------------------------------------------------

    def content_score(self, node_id, term):
        """tf-idf relevance of a node's direct text for one query term.

        Match-all terms score a constant 1.0: they constrain context
        only, so every candidate is equally relevant content-wise.
        """
        if term.is_match_all:
            return 1.0
        node = self.collection.node(node_id)
        tokens = self.inverted.analyzer.terms(node.direct_text)
        if not tokens:
            return 0.0
        norm = len(tokens) ** 0.5
        score = 0.0
        for word in term.search.terms():
            tf = tokens.count(word)
            if tf:
                score += tf * self.inverted.inverse_document_frequency(word)
        return score / norm

    # -- structure -----------------------------------------------------------

    def compactness(self, node_ids):
        """``1 / (1 + steiner_size)``; ``None`` when not connectable.

        Uses the star approximation over :meth:`pair_distance`: the sum
        of distances from the first node to each other node.
        """
        ids = list(dict.fromkeys(node_ids))
        if len(ids) <= 1:
            return 1.0
        anchor = ids[0]
        total = 0
        for other in ids[1:]:
            distance = self.pair_distance(anchor, other)
            if distance is None:
                return None
            total += distance
        return 1.0 / (1.0 + total)

    # -- combination ------------------------------------------------------------

    def combine(self, content_scores, compactness):
        """Weighted geometric combination of the two signals."""
        if not content_scores:
            return 0.0
        mean_content = sum(content_scores) / len(content_scores)
        return (
            (mean_content ** self.content_weight)
            * (compactness ** self.structure_weight)
        )

    def score_tuple(self, node_ids, terms, content_scores=None):
        """Full score for a candidate tuple; ``None`` if disconnected.

        Returns ``(score, content_scores, compactness)``.
        """
        if content_scores is None:
            content_scores = [
                self.content_score(node_id, term)
                for node_id, term in zip(node_ids, terms)
            ]
        compactness = self.compactness(node_ids)
        if compactness is None:
            return None
        return self.combine(content_scores, compactness), content_scores, compactness

    def upper_bound(self, content_bounds):
        """Best possible score given per-term content-score bounds.

        Compactness is at most 1 (all nodes coincide), so the TA
        threshold is the combined score at compactness 1.
        """
        return self.combine(content_bounds, 1.0)
