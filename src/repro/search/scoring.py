"""Ranking function: content relevance x structural compactness.

"The score function is based on the compactness of the graph
representing a tuple of nodes satisfying query terms" combined with a
content score from the full-text indexes (Section 4).  Concretely::

    score(t) = mean_i(content_score(n_i, qt_i)) * compactness(t)
    compactness(t) = 1 / (1 + steiner_size(t))

where ``steiner_size`` approximates the number of edges needed to
connect the tuple's nodes in the data graph (0 for a single node, so a
one-term query ranks purely by content).  Tuples that cannot be
connected within ``max_hops`` violate Definition 4 and score ``None``.

Where the work happens
----------------------

Content scores read **precomputed** numbers from the inverted index:
term frequencies from the positional postings and the node's length
norm recorded at build time.  The seed instead re-analyzed each node's
raw text per query (and counted term frequency with an O(tokens^2)
scan); reading from the index is both faster and drift-free -- the
score now reflects exactly what was indexed.

Structural distances are memoized per graph version
(:meth:`pair_distance`), so the star approximation in
:meth:`compactness` never walks the same Dewey/link route twice while
the graph is unchanged.

``precomputed=False`` is the escape hatch that disables every
query-time cache (tf tables, distance memo -- and, in the top-k unit,
stream caching and bound-based pruning).  It exists so the benchmark
suite can prove the fast path returns byte-identical answers to the
recompute-everything path; production paths never set it.
"""

_MISSING = object()


class ScoringModel:
    """Computes content scores, compactness, and combined tuple scores."""

    def __init__(self, collection, inverted, graph, max_hops=12,
                 content_weight=1.0, structure_weight=1.0, precomputed=True):
        self.collection = collection
        self.inverted = inverted
        self.graph = graph
        self.max_hops = max_hops
        self.content_weight = content_weight
        self.structure_weight = structure_weight
        #: When False, every query-time cache in the scoring pipeline is
        #: bypassed (the benchmark equivalence baseline).
        self.precomputed = precomputed
        self._doc_edge_index = None
        self._indexed_version = -1
        # Memoized pair distances, keyed on the symmetric (lo, hi) node
        # pair and valid for exactly one graph version.  Mutations are
        # externally serialized with queries (single writer / many
        # readers), so a version flip never races an in-flight search;
        # concurrent readers share the dict safely under the GIL
        # (writes of the same key are idempotent).  The hit/miss
        # counters are approximate under concurrency -- reporting only.
        self._pair_cache = {}
        self._pair_cache_version = -1
        self.pair_hits = 0
        self.pair_misses = 0

    # -- fast structural distances --------------------------------------------

    def _edge_index(self):
        """(doc_a, doc_b) -> [(source_id, target_id)] over link edges.

        Rebuilt when the graph mutated since the last use (keyed on
        :attr:`DataGraph.version`, so any mutation invalidates -- not
        just ones that change the edge count); keeps pair distance
        computation O(edges between the two documents) instead of a
        breadth-first search over the whole graph (link hubs such as
        frequently-referenced countries make BFS frontiers explode).
        """
        version = self.graph.version
        if self._doc_edge_index is None or self._indexed_version != version:
            index = {}
            for edge in self.graph.edges:
                source_doc = self.collection.node(edge.source_id).doc_id
                target_doc = self.collection.node(edge.target_id).doc_id
                index.setdefault((source_doc, target_doc), []).append(
                    (edge.source_id, edge.target_id)
                )
            self._doc_edge_index = index
            self._indexed_version = version
        return self._doc_edge_index

    def pair_distance(self, node_a, node_b):
        """Structural distance between two nodes, or ``None``.

        Memoized per graph version under a symmetric pair key (the
        route set is direction-independent), so the compactness star
        approximation never recomputes a distance while the graph is
        unchanged.  ``None`` ("not connectable") is cached too -- it is
        just as expensive to rediscover.
        """
        if not self.precomputed:
            return self._pair_distance(node_a, node_b)
        cache = self.pair_cache()
        key = (node_a, node_b) if node_a <= node_b else (node_b, node_a)
        value = cache.get(key, _MISSING)
        if value is not _MISSING:
            self.pair_hits += 1
            return value
        self.pair_misses += 1
        value = self._pair_distance(node_a, node_b)
        cache[key] = value
        return value

    def pair_cache(self):
        """The live distance memo for the current graph version.

        The top-k unit's hot loop reads this dict directly (symmetric
        ``(lo, hi)`` keys, :data:`_MISSING`-sentinel absent) to skip
        the method-call overhead of :meth:`pair_distance` on hits; it
        reports the hits it takes in bulk via :attr:`pair_hits`.
        """
        version = self.graph.version
        if self._pair_cache_version != version:
            self._pair_cache = {}
            self._pair_cache_version = version
        return self._pair_cache

    def _pair_distance(self, node_a, node_b):
        """Uncached distance: exact Dewey tree distance within one
        document, best single-link route across documents.

        Multi-link routes exceed any practical ``max_hops`` and are
        treated as disconnected for ranking.
        """
        first = self.collection.node(node_a)
        second = self.collection.node(node_b)
        if first.doc_id == second.doc_id:
            distance = first.dewey.tree_distance(second.dewey)
            return distance if distance <= self.max_hops else None
        index = self._edge_index()
        best = None
        for source_id, target_id in index.get(
            (first.doc_id, second.doc_id), ()
        ):
            candidate = self._route(first, second, source_id, target_id)
            if candidate is not None and (best is None or candidate < best):
                best = candidate
        for source_id, target_id in index.get(
            (second.doc_id, first.doc_id), ()
        ):
            candidate = self._route(second, first, source_id, target_id)
            if candidate is not None and (best is None or candidate < best):
                best = candidate
        if best is None or best > self.max_hops:
            return None
        return best

    def _route(self, first, second, source_id, target_id):
        source = self.collection.node(source_id)
        target = self.collection.node(target_id)
        return (
            first.dewey.tree_distance(source.dewey)
            + 1
            + target.dewey.tree_distance(second.dewey)
        )

    # -- content ------------------------------------------------------------

    def content_score(self, node_id, term):
        """tf-idf relevance of a node's direct text for one query term.

        Term frequencies and the length norm come from the inverted
        index (recorded at build time), never from re-analyzing
        ``node.direct_text`` at query time -- random access is two dict
        lookups, and the score reflects exactly what was indexed (the
        seed re-tokenized raw text per query, an O(tokens^2) count that
        could also drift from the indexed positions).  Match-all terms
        score a constant 1.0: they constrain context only, so every
        candidate is equally relevant content-wise.

        With ``precomputed=False`` this *is* the seed's algorithm --
        re-analyze, count, normalize -- kept as the benchmark baseline
        and equivalence oracle.
        """
        if term.is_match_all:
            return 1.0
        if not self.precomputed:
            return self._content_score_seed(node_id, term)
        length = self.inverted.node_length(node_id)
        if not length:
            return 0.0
        score = 0.0
        for word in term.search.terms():
            tf = self.inverted.term_frequencies(word).get(node_id, 0)
            if tf:
                score += tf * self.inverted.inverse_document_frequency(word)
        return score / (length ** 0.5)

    def _content_score_seed(self, node_id, term):
        """The seed's per-query recomputation (slow-path oracle)."""
        node = self.collection.node(node_id)
        tokens = self.inverted.analyzer.terms(node.direct_text)
        if not tokens:
            return 0.0
        norm = len(tokens) ** 0.5
        score = 0.0
        for word in term.search.terms():
            tf = tokens.count(word)
            if tf:
                score += tf * self.inverted.inverse_document_frequency(word)
        return score / norm

    # -- structure -----------------------------------------------------------

    def compactness(self, node_ids):
        """``1 / (1 + steiner_size)``; ``None`` when not connectable.

        Uses the star approximation over :meth:`pair_distance`: the sum
        of distances from the first node to each other node.
        """
        ids = list(dict.fromkeys(node_ids))
        if len(ids) <= 1:
            return 1.0
        anchor = ids[0]
        total = 0
        for other in ids[1:]:
            distance = self.pair_distance(anchor, other)
            if distance is None:
                return None
            total += distance
        return 1.0 / (1.0 + total)

    # -- combination ------------------------------------------------------------

    def combine(self, content_scores, compactness):
        """Weighted geometric combination of the two signals."""
        if not content_scores:
            return 0.0
        mean_content = sum(content_scores) / len(content_scores)
        return (
            (mean_content ** self.content_weight)
            * (compactness ** self.structure_weight)
        )

    def score_tuple(self, node_ids, terms, content_scores=None):
        """Full score for a candidate tuple; ``None`` if disconnected.

        Returns ``(score, content_scores, compactness)``.
        """
        if content_scores is None:
            content_scores = [
                self.content_score(node_id, term)
                for node_id, term in zip(node_ids, terms)
            ]
        compactness = self.compactness(node_ids)
        if compactness is None:
            return None
        return self.combine(content_scores, compactness), content_scores, compactness

    def upper_bound(self, content_bounds, compactness_cap=1.0):
        """Best possible score given per-term content-score bounds.

        Compactness is at most 1 (all nodes coincide), so the TA
        stopping threshold uses the default cap of 1; the top-k unit
        calls this once per corner of the rank-join stopping bound
        (each term's frontier combined with the other streams' maxima).

        The top-k unit also bounds fully-formed candidate tuples before
        computing their structural distances; there the caller passes
        the tighter (still admissible) cap ``1/m``: ``m`` distinct
        nodes are pairwise at distance >= 1, so the star size is at
        least ``m - 1`` and compactness at most ``1/m``.  A combo whose
        bound is strictly below the current k-th heap score would have
        been rejected by the very same heap comparison after scoring --
        pruning it changes no answer.
        """
        return self.combine(content_bounds, compactness_cap)

    # -- cross-worker sharing ---------------------------------------------------

    def adopt_caches(self, source):
        """Share ``source``'s derived caches instead of rebuilding them.

        Used by :meth:`TopKSearcher.share_read_caches` when worker
        searchers carry separate scoring models: the per-document edge
        index and the pair-distance memo are read-mostly and
        version-keyed, so N workers share one instance of each instead
        of building N identical copies.
        """
        self._doc_edge_index = source._doc_edge_index
        self._indexed_version = source._indexed_version
        self._pair_cache = source._pair_cache
        self._pair_cache_version = source._pair_cache_version
        return self

    def counters(self):
        """Cumulative distance-memo hit/miss counters (batch stats)."""
        return {
            "distance_hits": self.pair_hits,
            "distance_misses": self.pair_misses,
        }
