"""Exhaustive search: the correctness oracle for the TA top-k unit.

Enumerates the full cross product of per-term candidate lists, scores
every connectable combination, and returns the global top-k.  Only
usable on small candidate sets (the cross product is capped), which is
exactly its role: validating that the threshold algorithm returns the
same answers, and serving as the benchmark baseline.
"""

import itertools

from repro.search.result import ResultTuple


class NaiveSearcher:
    """Brute-force Definition 4 evaluation with ranking."""

    def __init__(self, matcher, scoring, max_combinations=2_000_000):
        self.matcher = matcher
        self.scoring = scoring
        self.max_combinations = max_combinations

    def search(self, query, k=10):
        """Top-k result tuples by exhaustive enumeration."""
        candidate_lists = [self.matcher.candidates(term) for term in query]
        total = 1
        for candidates in candidate_lists:
            total *= max(1, len(candidates))
        if total > self.max_combinations:
            raise ValueError(
                f"cross product of {total} combinations exceeds the naive "
                f"searcher's cap of {self.max_combinations}"
            )
        results = []
        for node_ids in itertools.product(*candidate_lists):
            if len(set(node_ids)) < len(node_ids):
                continue  # a node cannot satisfy two terms at once
            scored = self.scoring.score_tuple(node_ids, query.terms)
            if scored is None:
                continue
            score, content_scores, compactness = scored
            results.append(
                ResultTuple(node_ids, content_scores, compactness, score)
            )
        results.sort(key=lambda r: (-r.score, r.node_ids))
        return results[:k]

    def all_results(self, query):
        """Every connectable tuple, unranked (Definition 4's R(q))."""
        return self.search(query, k=None)
