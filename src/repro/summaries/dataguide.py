"""Dataguide summaries with similarity-based merging (Section 6.1).

A dataguide [15, 9] summarizes a document as its set of full
root-to-leaf paths.  SEDA computes one dataguide per document and
merges it into the existing set:

* if the document's dataguide is a subset of (or equal to) an existing
  guide, it is absorbed with no further processing;
* otherwise it is merged into the best-overlapping existing guide when

      overlap(dg1, dg2) = min(|common| / |paths(dg1)|,
                              |common| / |paths(dg2)|)

  reaches the merge threshold (the paper evaluates 40%);
* otherwise it starts a new guide.

The computational cost is O(n * m) for n documents and m guides, as in
the paper.  Merging loses precision: a merged guide may imply
connections that no single document instantiates -- the *false
positives* of Section 6.1, quantified by
:meth:`DataguideSet.false_positive_pairs`.

Path tables are trie-backed: every guide stores its paths and
per-source path sets as terminal-node ids of a
:class:`~repro.compact.trie.PathTrie` (typically the system-wide trie
shared with the path index), so overlap/subset/merge arithmetic runs on
small-int sets and each label string is held once per system.  The
string-facing API -- :attr:`Dataguide.paths`,
:attr:`Dataguide.source_path_sets` -- renders lazily and caches, and
the snapshot format is unchanged.
"""

import itertools
import json
import os

from repro.compact.trie import PathTrie


def overlap(paths_a, paths_b):
    """The paper's overlap similarity between two path sets.

    Set-generic: callers pass string sets or trie-id sets alike (both
    sides must speak the same currency).
    """
    if not paths_a or not paths_b:
        return 0.0
    common = len(paths_a & paths_b)
    return min(common / len(paths_a), common / len(paths_b))


class Dataguide:
    """One (possibly merged) structural summary: a set of paths."""

    __slots__ = ("guide_id", "trie", "path_ids", "document_ids",
                 "source_id_sets", "_paths_cache", "_sources_cache")

    def __init__(self, guide_id, paths, document_id, trie=None):
        self.guide_id = guide_id
        self.trie = trie if trie is not None else PathTrie()
        self.path_ids = {self.trie.insert(path) for path in paths}
        self.document_ids = [document_id]
        # Per-source path-id sets are kept so that false-positive
        # analysis can distinguish merged-in structure from real
        # co-occurrence.
        self.source_id_sets = [frozenset(self.path_ids)]
        self._paths_cache = None
        self._sources_cache = None

    # -- string-facing views (rendered lazily, cached) -----------------------

    @property
    def paths(self):
        """The guide's path strings (rendered from the trie, cached)."""
        cached = self._paths_cache
        if cached is None:
            render = self.trie.render
            cached = self._paths_cache = {
                render(pid) for pid in self.path_ids
            }
        return cached

    @property
    def source_path_sets(self):
        """Per-source path-string sets, parallel to ``document_ids``."""
        cached = self._sources_cache
        if cached is None:
            render = self.trie.render
            cached = self._sources_cache = [
                frozenset(render(pid) for pid in source)
                for source in self.source_id_sets
            ]
        return cached

    # -- merging -------------------------------------------------------------

    def absorb(self, paths, document_id):
        """Merge another document's path set into this guide."""
        self._absorb_ids(
            {self.trie.insert(path) for path in paths}, document_id
        )

    def _absorb_ids(self, ids, document_id):
        """Id-space absorb (``ids`` must be this guide's trie's ids)."""
        self.path_ids |= ids
        self.document_ids.append(document_id)
        self.source_id_sets.append(frozenset(ids))
        self._paths_cache = None
        self._sources_cache = None

    @classmethod
    def _restore(cls, guide_id, trie, path_ids, document_ids,
                 source_id_sets):
        """Snapshot fast path: rebuild without replaying the merges."""
        guide = object.__new__(cls)
        guide.guide_id = guide_id
        guide.trie = trie
        guide.path_ids = path_ids
        guide.document_ids = document_ids
        guide.source_id_sets = source_id_sets
        guide._paths_cache = None
        guide._sources_cache = None
        return guide

    def is_superset_of(self, paths):
        find = self.trie.find
        ids = self.path_ids
        for path in paths:
            pid = find(path)
            if pid is None or pid not in ids:
                return False
        return True

    def _is_superset_of_ids(self, ids):
        return ids <= self.path_ids

    def contains_path(self, path):
        pid = self.trie.find(path)
        return pid is not None and pid in self.path_ids

    # -- structure ----------------------------------------------------------

    def lca_path(self, path_a, path_b):
        """Longest common prefix path of two member paths, or ``None``."""
        if not (self.contains_path(path_a) and self.contains_path(path_b)):
            return None
        steps_a = path_a.split("/")[1:]
        steps_b = path_b.split("/")[1:]
        common = []
        for step_a, step_b in zip(steps_a, steps_b):
            if step_a != step_b:
                break
            common.append(step_a)
        if not common:
            return None
        return "/" + "/".join(common)

    def tree_distance(self, path_a, path_b):
        """Edges between two path nodes inside this guide's tree."""
        lca = self.lca_path(path_a, path_b)
        if lca is None:
            return None
        depth = lca.count("/")
        return (path_a.count("/") - depth) + (path_b.count("/") - depth)

    def co_occurs(self, path_a, path_b):
        """True when some *source document* contained both paths.

        A merged guide contains the union of its sources, so two paths
        may both be present while never co-occurring -- the root cause
        of false-positive connections.
        """
        find = self.trie.find
        id_a = find(path_a)
        id_b = find(path_b)
        if id_a is None or id_b is None:
            return False
        return self._co_occur_ids(id_a, id_b)

    def _co_occur_ids(self, id_a, id_b):
        return any(
            id_a in source and id_b in source
            for source in self.source_id_sets
        )

    def __len__(self):
        return len(self.path_ids)

    def __repr__(self):
        return (
            f"Dataguide(id={self.guide_id}, paths={len(self.path_ids)}, "
            f"docs={len(self.document_ids)})"
        )


class DataguideSet:
    """The merged dataguide collection DG plus cross-guide links."""

    def __init__(self, guides, threshold, trie=None):
        self.guides = guides
        self.threshold = threshold
        #: The trie the path lookup table speaks; defaults to the first
        #: guide's (the builder gives every guide the same one).
        self.trie = trie if trie is not None else (
            guides[0].trie if guides else PathTrie()
        )
        self._guide_of_doc = {}
        self._guides_of_path = {}  # trie id (in self.trie) -> [guides]
        for guide in guides:
            for doc_id in guide.document_ids:
                self._guide_of_doc[doc_id] = guide
            if guide.trie is self.trie:
                ids = guide.path_ids
            else:
                # A guide built on a foreign trie (hand-assembled sets
                # in tests): re-anchor its paths in ours.
                ids = {self.trie.insert(path) for path in guide.paths}
            for pid in ids:
                self._guides_of_path.setdefault(pid, []).append(guide)
        self.links = []  # (source_guide, source_path, target_guide, target_path, kind, label)

    # -- lookups ------------------------------------------------------------

    def guide_for_document(self, doc_id):
        return self._guide_of_doc.get(doc_id)

    def guides_for_path(self, path):
        pid = self.trie.find(path)
        if pid is None:
            return []
        return list(self._guides_of_path.get(pid, ()))

    def __len__(self):
        return len(self.guides)

    def __iter__(self):
        return iter(self.guides)

    # -- cross-guide links -------------------------------------------------------

    def add_links_from_graph(self, graph):
        """Record dataguide-level links for every non-tree data edge.

        "We first compute a collection of dataguides ... together with a
        set of links between the dataguides corresponding to the
        external edges between documents" (Section 6.1).  Intra-document
        edges also register so that link connections inside one guide
        are discoverable.
        """
        collection = graph.collection
        seen = set()
        for edge in graph.edges:
            source = collection.node(edge.source_id)
            target = collection.node(edge.target_id)
            source_guide = self.guide_for_document(source.doc_id)
            target_guide = self.guide_for_document(target.doc_id)
            if source_guide is None or target_guide is None:
                continue
            key = (
                source_guide.guide_id, source.path,
                target_guide.guide_id, target.path,
                edge.kind, edge.label,
            )
            if key in seen:
                continue
            seen.add(key)
            self.links.append(
                (source_guide, source.path, target_guide, target.path,
                 edge.kind, edge.label)
            )
        return self.links

    # -- quality analysis (Section 6.1) ----------------------------------------

    def false_positive_pairs(self):
        """Path pairs co-present in a merged guide but never in a source.

        "Merging similar dataguides introduces some false connections.
        Hence the higher the overlap threshold, the fewer the false
        positive connections."  Returns ``(false_pairs, total_pairs)``
        summed over all guides, so a rate can be derived.
        """
        false_pairs = 0
        total_pairs = 0
        for guide in self.guides:
            if len(guide.source_id_sets) == 1:
                # Single-source guides cannot contain merge artifacts,
                # and their pair count can be huge; count them cheaply.
                size = len(guide.path_ids)
                total_pairs += size * (size - 1) // 2
                continue
            for id_a, id_b in itertools.combinations(guide.path_ids, 2):
                total_pairs += 1
                if not guide._co_occur_ids(id_a, id_b):
                    false_pairs += 1
        return false_pairs, total_pairs

    def reduction_factor(self, document_count):
        """documents / guides -- the paper's 3x to 100x reduction."""
        if not self.guides:
            return 0.0
        return document_count / len(self.guides)

    # -- persistence (Section 6.1) --------------------------------------------
    #
    # "The dataguide summary is precomputed on the entire data graph G.
    # At query time, SEDA optimizes the use of the dataguide index by
    # loading it into memory only once from disk."

    def to_dict(self):
        """Snapshot form (also the on-disk JSON format of :meth:`save`).

        Per-source path sets are coded as indexes into the guide's
        sorted path list, so each path string is stored once per guide
        however many source documents contain it.  Links are stored by
        (guide id, path, kind, label); guides are identified stably so
        links re-attach on load.  The format predates the trie-backed
        tables and is byte-for-byte unchanged by them.
        """
        guides = []
        path_ids = {}  # guide_id -> {path: index}
        for guide in self.guides:
            paths = sorted(guide.paths)
            index_of = path_ids[guide.guide_id] = {
                path: i for i, path in enumerate(paths)
            }
            guides.append({
                "guide_id": guide.guide_id,
                "paths": paths,
                "document_ids": guide.document_ids,
                "sources": [
                    sorted(index_of[path] for path in source)
                    for source in guide.source_path_sets
                ],
            })
        return {
            "threshold": self.threshold,
            "guides": guides,
            # Compact positional form; link endpoints are coded as
            # indexes into the owning guide's path list.
            "links": [
                [
                    source_guide.guide_id,
                    path_ids[source_guide.guide_id][source_path],
                    target_guide.guide_id,
                    path_ids[target_guide.guide_id][target_path],
                    kind.value,
                    label,
                ]
                for source_guide, source_path, target_guide, target_path,
                kind, label in self.links
            ],
        }

    @classmethod
    def from_dict(cls, payload, trie=None):
        """Rebuild a dataguide set from :meth:`to_dict`.

        ``trie`` anchors the restored path tables in an existing
        (shared) trie -- the system restore passes the path index's so
        both speak the same ids; standalone loads get a fresh one.
        """
        from repro.model.graph import EdgeKind

        if trie is None:
            trie = PathTrie()
        guides = []
        for record in payload["guides"]:
            paths = record["paths"]
            ids = [trie.insert(path) for path in paths]
            guides.append(Dataguide._restore(
                record["guide_id"],
                trie,
                set(ids),
                list(record["document_ids"]),
                [
                    frozenset(ids[i] for i in source)
                    for source in record["sources"]
                ],
            ))
        guide_set = cls(guides, payload["threshold"], trie=trie)
        by_id = {guide.guide_id: guide for guide in guides}
        paths_of = {
            record["guide_id"]: record["paths"]
            for record in payload["guides"]
        }
        kind_of = {kind.value: kind for kind in EdgeKind}
        for sg, sp, tg, tp, kind, label in payload["links"]:
            guide_set.links.append((
                by_id[sg], paths_of[sg][sp],
                by_id[tg], paths_of[tg][tp],
                kind_of[kind], label,
            ))
        return guide_set

    def save(self, path):
        """Write the dataguide set to ``path`` (JSON), atomically."""
        tmp_path = f"{path}.tmp"
        with open(tmp_path, "w", encoding="utf-8") as handle:
            json.dump(self.to_dict(), handle)
        os.replace(tmp_path, path)

    @classmethod
    def load(cls, path):
        """Read a dataguide set previously written by :meth:`save`."""
        with open(path, "r", encoding="utf-8") as handle:
            return cls.from_dict(json.load(handle))


class DataguideBuilder:
    """Streaming construction of a :class:`DataguideSet`."""

    def __init__(self, threshold=0.4, trie=None):
        if not 0.0 <= threshold <= 1.0:
            raise ValueError("threshold must be within [0, 1]")
        self.threshold = threshold
        self.trie = trie if trie is not None else PathTrie()
        self._guides = []

    @classmethod
    def from_set(cls, guide_set):
        """A builder resuming from an existing :class:`DataguideSet`.

        Used after a snapshot restore: the builder adopts the loaded
        guides (shared, not copied) and their trie, so that later
        documents merge into the same mined structure instead of
        starting from scratch.
        """
        builder = cls(guide_set.threshold, trie=guide_set.trie)
        builder._guides = list(guide_set.guides)
        return builder

    def add_document(self, document):
        """Merge one document's dataguide into the set."""
        return self.add_paths(document.paths(), document.doc_id)

    def add_paths(self, paths, document_id):
        """Merge a raw path set (used by generators and tests)."""
        paths = set(paths)
        ids = {self.trie.insert(path) for path in paths}
        # Id arithmetic needs both sides on one trie; a guide adopted
        # from a foreign set falls back to its string view.
        shares = [guide.trie is self.trie for guide in self._guides]
        # Case 1: subset of or equal to an existing guide -> absorbed.
        for guide, shared in zip(self._guides, shares):
            if (guide._is_superset_of_ids(ids) if shared
                    else guide.is_superset_of(paths)):
                self._absorb(guide, shared, ids, paths, document_id)
                return guide
        # Case 2: merge with the best-overlapping guide over the threshold.
        best_guide = None
        best_shared = False
        best_overlap = 0.0
        for guide, shared in zip(self._guides, shares):
            score = overlap(guide.path_ids if shared else guide.paths,
                            ids if shared else paths)
            if score > best_overlap:
                best_overlap = score
                best_guide = guide
                best_shared = shared
        if best_guide is not None and best_overlap >= self.threshold:
            self._absorb(best_guide, best_shared, ids, paths, document_id)
            return best_guide
        # Case 3: a brand-new guide.
        guide = Dataguide(len(self._guides), paths, document_id,
                          trie=self.trie)
        self._guides.append(guide)
        return guide

    @staticmethod
    def _absorb(guide, shared, ids, paths, document_id):
        if shared:
            guide._absorb_ids(ids, document_id)
        else:
            guide.absorb(paths, document_id)

    def build(self, collection=None, graph=None):
        """Finish: optionally ingest a collection, then freeze the set."""
        if collection is not None:
            for document in collection.documents:
                self.add_document(document)
        guide_set = DataguideSet(list(self._guides), self.threshold,
                                 trie=self.trie)
        if graph is not None:
            guide_set.add_links_from_graph(graph)
        return guide_set

    @property
    def guide_count(self):
        return len(self._guides)
