"""Result summaries: context discovery and relationship discovery.

Sections 5 and 6 of the paper.  The *context summary* lists, per query
term, every distinct root-to-leaf path the term matches in the whole
collection, ordered by the path's absolute frequency.  The *connection
summary* presents the "meaningful" pairwise connections observed in
the top-k results, mapped onto a merged *dataguide* summary of the
collection's structure.
"""

from repro.summaries.context import (
    ContextBucket,
    ContextEntry,
    ContextSummary,
    ContextSummaryGenerator,
)
from repro.summaries.dataguide import Dataguide, DataguideBuilder, DataguideSet
from repro.summaries.connection import (
    Connection,
    ConnectionSummary,
    ConnectionSummaryGenerator,
    LinkConnection,
    TreeConnection,
)

__all__ = [
    "Connection",
    "ConnectionSummary",
    "ConnectionSummaryGenerator",
    "ContextBucket",
    "ContextEntry",
    "ContextSummary",
    "ContextSummaryGenerator",
    "Dataguide",
    "DataguideBuilder",
    "DataguideSet",
    "LinkConnection",
    "TreeConnection",
]
