"""Relationship discovery: the connection summary (Section 6).

SEDA extracts *pairwise connections* between the nodes of the top-k
result tuples, maps them onto the dataguide set, and presents the
distinct connections for the user to pick or drop.  A connection is
identified structurally, so it can later be enforced over the complete
result set:

* :class:`TreeConnection` -- two contexts meeting at a lowest common
  ancestor path within one document (e.g. ``trade_country`` and
  ``percentage`` meeting at ``.../item`` versus at
  ``.../import_partners`` -- the paper's two ways of connecting them);
* :class:`LinkConnection` -- two contexts connected through a non-tree
  edge (IDREF / XLink / value link), such as Figure 1's ``bordering``
  and ``trade partner`` relationships.

Discovered connections are cached per (path, path) pair, as in the
paper's optimization.
"""

import itertools

from repro.model.graph import EdgeKind


class Connection:
    """Base class: a distinct way two query terms' nodes relate."""

    def describe(self):
        raise NotImplementedError

    def matches_instance(self, collection, graph, node_a, node_b, max_hops=12):
        """Does a concrete node pair instantiate this connection?"""
        raise NotImplementedError


class TreeConnection(Connection):
    """Two paths meeting at an LCA path inside one document."""

    __slots__ = ("path_a", "path_b", "lca_path")

    def __init__(self, path_a, path_b, lca_path):
        self.path_a = path_a
        self.path_b = path_b
        self.lca_path = lca_path

    @property
    def length(self):
        depth = self.lca_path.count("/")
        return (self.path_a.count("/") - depth) + (
            self.path_b.count("/") - depth
        )

    def key(self):
        return ("tree", self.path_a, self.path_b, self.lca_path)

    def describe(self):
        return (
            f"{self.path_a} <-[{self.lca_path}]-> {self.path_b} "
            f"(length {self.length})"
        )

    def matches_instance(self, collection, graph, node_a, node_b, max_hops=12):
        first = collection.node(node_a)
        second = collection.node(node_b)
        if first.doc_id != second.doc_id:
            return False
        pair = (first.path, second.path)
        if pair != (self.path_a, self.path_b) and pair != (
            self.path_b, self.path_a
        ):
            return False
        lca = first.dewey.common_ancestor(second.dewey)
        lca_node = collection.node_by_ref(first.doc_id, lca)
        return lca_node is not None and lca_node.path == self.lca_path

    def __eq__(self, other):
        return isinstance(other, TreeConnection) and self.key() == other.key()

    def __hash__(self):
        return hash(self.key())

    def __repr__(self):
        return f"TreeConnection({self.describe()})"


class LinkConnection(Connection):
    """Two paths connected through a non-tree edge.

    The connection runs ``path_a .. source_path --edge--> target_path
    .. path_b`` where the ``..`` hops are tree steps within a document.
    """

    __slots__ = ("path_a", "path_b", "source_path", "target_path", "kind",
                 "label")

    def __init__(self, path_a, path_b, source_path, target_path, kind, label):
        self.path_a = path_a
        self.path_b = path_b
        self.source_path = source_path
        self.target_path = target_path
        self.kind = kind
        self.label = label

    def key(self):
        return (
            "link", self.path_a, self.path_b, self.source_path,
            self.target_path, self.kind.value, self.label,
        )

    def describe(self):
        label = self.label or self.kind.value
        return (
            f"{self.path_a} .. {self.source_path} ={label}=> "
            f"{self.target_path} .. {self.path_b}"
        )

    def matches_instance(self, collection, graph, node_a, node_b, max_hops=12):
        first = collection.node(node_a)
        second = collection.node(node_b)
        pair = (first.path, second.path)
        if pair != (self.path_a, self.path_b) and pair != (
            self.path_b, self.path_a
        ):
            return False
        path = graph.shortest_path(node_a, node_b, max_hops=max_hops)
        if path is None:
            return False
        edge = _first_link_edge(graph, path)
        if edge is None:
            return False
        source = collection.node(edge.source_id)
        target = collection.node(edge.target_id)
        return (
            {source.path, target.path} == {self.source_path, self.target_path}
            and edge.kind == self.kind
            and edge.label == self.label
        )

    def __eq__(self, other):
        return isinstance(other, LinkConnection) and self.key() == other.key()

    def __hash__(self):
        return hash(self.key())

    def __repr__(self):
        return f"LinkConnection({self.describe()})"


def _first_link_edge(graph, node_path):
    """The first non-tree edge along a node-id path, or ``None``."""
    for left, right in zip(node_path, node_path[1:]):
        for edge in graph.out_edges(left):
            if edge.target_id == right:
                return edge
        for edge in graph.in_edges(left):
            if edge.source_id == right:
                return edge
    return None


class ConnectionSummary:
    """Distinct connections per term pair, with supporting-tuple counts."""

    def __init__(self, query, entries):
        self.query = query
        # entries: {(i, j): {Connection: support_count}}
        self.entries = entries

    def connections(self, i, j):
        """Connections between terms i and j, most supported first."""
        bucket = self.entries.get((i, j), {})
        return sorted(
            bucket, key=lambda conn: (-bucket[conn], conn.describe())
        )

    def all_connections(self):
        result = []
        for (i, j), bucket in sorted(self.entries.items()):
            for connection, support in sorted(
                bucket.items(), key=lambda item: (-item[1], item[0].describe())
            ):
                result.append(((i, j), connection, support))
        return result

    def support(self, i, j, connection):
        return self.entries.get((i, j), {}).get(connection, 0)

    def __len__(self):
        return sum(len(bucket) for bucket in self.entries.values())


class ConnectionSummaryGenerator:
    """Builds connection summaries from top-k results (Section 6.1).

    Nodes of the top-k result are mapped onto the dataguide set by
    root-to-leaf path; pairwise connections are classified as tree or
    link connections.  "If there are multiple paths between two
    dataguide nodes, the algorithm chooses the one with the shortest
    path" -- we take the shortest instance path via the data graph.
    Discovered connections are cached keyed by the node pair's paths.
    """

    def __init__(self, collection, graph, dataguides, max_hops=12):
        self.collection = collection
        self.graph = graph
        self.dataguides = dataguides
        self.max_hops = max_hops
        self._cache = {}

    def generate(self, query, results):
        """The :class:`ConnectionSummary` for top-k ``results``."""
        entries = {}
        term_count = len(query.terms)
        for result in results:
            for i, j in itertools.combinations(range(term_count), 2):
                connection = self.classify_pair(
                    result.node_ids[i], result.node_ids[j]
                )
                if connection is None:
                    continue
                bucket = entries.setdefault((i, j), {})
                bucket[connection] = bucket.get(connection, 0) + 1
        return ConnectionSummary(query, entries)

    # -- pair classification ---------------------------------------------------

    def classify_pair(self, node_a, node_b):
        """The :class:`Connection` a concrete node pair instantiates."""
        first = self.collection.node(node_a)
        second = self.collection.node(node_b)
        cache_key = (first.doc_id == second.doc_id, first.path, second.path,
                     node_a, node_b)
        if cache_key in self._cache:
            return self._cache[cache_key]
        connection = self._classify(first, second, node_a, node_b)
        self._cache[cache_key] = connection
        return connection

    def _classify(self, first, second, node_a, node_b):
        if first.doc_id == second.doc_id:
            # Prefer the tree interpretation when both nodes share a
            # document and the pure tree path is no longer than the
            # shortest graph path (the dataguide's shortest-path rule).
            tree_distance = first.dewey.tree_distance(second.dewey)
            graph_path = self.graph.shortest_path(
                node_a, node_b, max_hops=min(self.max_hops, tree_distance)
            )
            if graph_path is not None:
                edge = _first_link_edge(self.graph, graph_path)
                if edge is not None and len(graph_path) - 1 < tree_distance:
                    return self._link_connection(first, second, edge)
            lca = first.dewey.common_ancestor(second.dewey)
            lca_node = self.collection.node_by_ref(first.doc_id, lca)
            if lca_node is None:
                return None
            return TreeConnection(first.path, second.path, lca_node.path)
        graph_path = self.graph.shortest_path(
            node_a, node_b, max_hops=self.max_hops
        )
        if graph_path is None:
            return None
        edge = _first_link_edge(self.graph, graph_path)
        if edge is None:
            return None
        return self._link_connection(first, second, edge)

    def _link_connection(self, first, second, edge):
        source = self.collection.node(edge.source_id)
        target = self.collection.node(edge.target_id)
        return LinkConnection(
            first.path, second.path, source.path, target.path,
            edge.kind, edge.label,
        )

    # -- dataguide-level enumeration (for analysis / refinement UI) ----------------

    def potential_tree_connections(self, path_a, path_b):
        """All tree connections a merged guide implies for two paths.

        Every common prefix of the two paths is a potential meeting
        point; instances may meet at any of them (e.g. sibling
        ``trade_country``/``percentage`` under ``item`` versus cousins
        under ``import_partners``).  Used by the false-positive
        analysis and to show options beyond those seen in top-k.
        """
        connections = []
        for guide in self.dataguides:
            if path_a not in guide.paths or path_b not in guide.paths:
                continue
            lca = guide.lca_path(path_a, path_b)
            if lca is None:
                continue
            prefix = lca
            while prefix:
                connections.append(TreeConnection(path_a, path_b, prefix))
                prefix = prefix.rsplit("/", 1)[0]
        return sorted(set(connections), key=lambda c: -c.lca_path.count("/"))
