"""Context discovery (Section 5).

For each query term SEDA computes a *context bucket*: all distinct
paths the term appears in within the entire data collection, displayed
sorted by frequency.  Crucially the frequency shown is the absolute
frequency of the *path* in the collection -- "irrespective of the
keyword" -- to convey the structural shape of the data (this is the
paper's stated difference from faceted search engines).
"""


class ContextEntry:
    """One context (path) in a bucket, with collection-level statistics."""

    __slots__ = ("path", "occurrences", "document_frequency")

    def __init__(self, path, occurrences, document_frequency):
        self.path = path
        self.occurrences = occurrences
        self.document_frequency = document_frequency

    def __eq__(self, other):
        if not isinstance(other, ContextEntry):
            return NotImplemented
        return self.path == other.path

    def __repr__(self):
        return (
            f"ContextEntry({self.path!r}, n={self.occurrences}, "
            f"docs={self.document_frequency})"
        )


class ContextBucket:
    """All contexts for one query term, sorted by descending frequency."""

    def __init__(self, term, entries):
        self.term = term
        self.entries = sorted(
            entries, key=lambda entry: (-entry.occurrences, entry.path)
        )

    @property
    def paths(self):
        return [entry.path for entry in self.entries]

    def __len__(self):
        return len(self.entries)

    def __iter__(self):
        return iter(self.entries)

    def __repr__(self):
        return f"ContextBucket({self.term!r}, contexts={len(self.entries)})"


class ContextSummary:
    """One bucket per query term, in term order."""

    def __init__(self, query, buckets):
        self.query = query
        self.buckets = buckets

    def bucket(self, index):
        return self.buckets[index]

    def combination_count(self):
        """Number of ways to pick one context per term (Example 1's
        "12 different ways of combining these nodes")."""
        total = 1
        for bucket in self.buckets:
            total *= max(1, len(bucket))
        return total

    def __iter__(self):
        return iter(self.buckets)

    def __len__(self):
        return len(self.buckets)


class ContextSummaryGenerator:
    """Computes context summaries from the path index (Figure 8)."""

    def __init__(self, matcher):
        self.matcher = matcher
        self.collection = matcher.collection

    def generate(self, query):
        """The :class:`ContextSummary` for a query."""
        buckets = []
        for term in query:
            entries = []
            for path in self.matcher.term_paths(term):
                stats = self.collection.path_stats(path)
                if stats is None:
                    continue
                entries.append(
                    ContextEntry(
                        path, stats.occurrences, stats.document_frequency
                    )
                )
            buckets.append(ContextBucket(term, entries))
        return ContextSummary(query, buckets)

    def refine(self, query, selections):
        """A new query restricted to the chosen contexts.

        ``selections`` maps term index -> list of chosen paths; terms
        absent from the mapping keep their original context.  This is
        the Figure 6 feedback loop: "If a subset of contexts are chosen,
        SEDA computes the top-k results again limited to this subset."
        """
        from repro.query.term import (
            ContextDisjunction,
            PathContext,
            Query,
            QueryTerm,
        )

        terms = []
        for index, term in enumerate(query):
            chosen = selections.get(index)
            if not chosen:
                terms.append(term)
                continue
            contexts = [PathContext(path) for path in chosen]
            context = (
                contexts[0] if len(contexts) == 1
                else ContextDisjunction(contexts)
            )
            terms.append(QueryTerm(context, term.search, label=term.label))
        return Query(terms)
