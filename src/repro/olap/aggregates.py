"""Aggregation functions over measure value lists.

``None`` values (unparseable or missing measures) are skipped, matching
SQL aggregate NULL semantics.
"""


def _clean(values):
    return [value for value in values if isinstance(value, (int, float))]


def agg_sum(values):
    cleaned = _clean(values)
    return sum(cleaned) if cleaned else None


def agg_count(values):
    return len(_clean(values))


def agg_avg(values):
    cleaned = _clean(values)
    if not cleaned:
        return None
    return sum(cleaned) / len(cleaned)


def agg_min(values):
    cleaned = _clean(values)
    return min(cleaned) if cleaned else None


def agg_max(values):
    cleaned = _clean(values)
    return max(cleaned) if cleaned else None


AGGREGATES = {
    "sum": agg_sum,
    "count": agg_count,
    "avg": agg_avg,
    "min": agg_min,
    "max": agg_max,
}


def aggregate(name, values):
    """Apply the named aggregate; raises ``KeyError`` on unknown names."""
    try:
        function = AGGREGATES[name]
    except KeyError:
        raise KeyError(
            f"unknown aggregate {name!r}; choose from {sorted(AGGREGATES)}"
        ) from None
    return function(values)
