"""The OLAP engine facade: cubes from a star schema, plus rendering."""

from repro.olap.cube import Cube


class OLAPEngine:
    """Consumes a :class:`~repro.cube.star.StarSchema`.

    One cube per fact table ("we feed these tables into an OLAP-tool to
    compute the data cubes, one per fact table").  Cubes are built
    lazily and cached per (fact, measure).
    """

    def __init__(self, star_schema):
        self.star_schema = star_schema
        self._cubes = {}

    def cube(self, fact_name, measure=None):
        """The cube for one fact table (first measure by default)."""
        table = self.star_schema.fact(fact_name)
        if measure is None:
            measure = table.measures[0]
        key = (fact_name, measure)
        if key not in self._cubes:
            self._cubes[key] = Cube.from_fact_table(table, measure)
        return self._cubes[key]

    def cubes(self):
        """All cubes, one per fact table."""
        return [self.cube(name) for name in self.star_schema.fact_tables]

    def report(self, fact_name, group_by, agg="sum", measure=None):
        """Grouped aggregate rows, sorted: ``[(coordinate..., value)]``."""
        cube = self.cube(fact_name, measure)
        grouped = cube.aggregate(agg=agg, group_by=group_by)
        return [
            coordinate + (value,)
            for coordinate, value in sorted(
                grouped.items(), key=lambda item: tuple(map(str, item[0]))
            )
        ]

    @staticmethod
    def render_pivot(pivot, row_label="", float_format="{:.2f}"):
        """Plain-text rendering of a :meth:`Cube.pivot` table."""
        columns = sorted(
            {column for row in pivot.values() for column in row},
            key=str,
        )
        header = [row_label] + [str(column) for column in columns]
        lines = ["\t".join(header)]
        for row_value in sorted(pivot, key=str):
            cells = [str(row_value)]
            for column in columns:
                value = pivot[row_value].get(column)
                if isinstance(value, float):
                    cells.append(float_format.format(value))
                else:
                    cells.append("" if value is None else str(value))
            lines.append("\t".join(cells))
        return "\n".join(lines)
