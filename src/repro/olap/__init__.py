"""A small OLAP engine: the "off-the-shelf OLAP tool" of the paper.

SEDA's final step feeds star-schema tables "into an OLAP tool to
compute the data cubes, one per fact table, and the desired aggregation
functions for further analysis".  This package is that consumer: it
builds a :class:`Cube` per fact table and supports roll-up,
drill-down, slice, dice, and pivot with the standard aggregates.
"""

from repro.olap.aggregates import AGGREGATES, aggregate
from repro.olap.cube import Cube
from repro.olap.engine import OLAPEngine
from repro.olap.hierarchy import Hierarchy

__all__ = ["AGGREGATES", "Cube", "Hierarchy", "OLAPEngine", "aggregate"]
