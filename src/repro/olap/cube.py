"""Data cubes over fact tables."""

from repro.olap.aggregates import aggregate


class Cube:
    """A cube: dimension coordinates -> measure value lists.

    Built from a :class:`~repro.cube.star.FactTable`; one cube per fact
    table, as in the paper's final step.  All operations return plain
    data or new :class:`Cube` instances -- cubes are immutable.
    """

    def __init__(self, dimensions, measure, cells):
        self.dimensions = list(dimensions)
        self.measure = measure
        # cells: {coordinate tuple (aligned with dimensions): [values]}
        self._cells = cells

    @classmethod
    def from_fact_table(cls, fact_table, measure=None):
        """Build a cube from a fact table (first measure by default)."""
        if measure is None:
            measure = fact_table.measures[0]
        measure_pos = len(fact_table.key_columns) + fact_table.measures.index(
            measure
        )
        cells = {}
        for row in fact_table.rows:
            coordinate = fact_table.key_of(row)
            cells.setdefault(coordinate, []).append(row[measure_pos])
        return cls(fact_table.key_columns, measure, cells)

    # -- inspection -----------------------------------------------------------

    def members(self, dimension):
        """Distinct coordinate values along one dimension."""
        axis = self._axis(dimension)
        return sorted(
            {coordinate[axis] for coordinate in self._cells},
            key=lambda value: (value is None, str(value)),
        )

    def cell_count(self):
        return len(self._cells)

    def _axis(self, dimension):
        try:
            return self.dimensions.index(dimension)
        except ValueError:
            raise KeyError(
                f"unknown dimension {dimension!r}; cube has {self.dimensions}"
            ) from None

    # -- OLAP operations ----------------------------------------------------------

    def slice(self, dimension, value):
        """Fix one dimension to a value; the dimension is removed."""
        axis = self._axis(dimension)
        cells = {}
        for coordinate, values in self._cells.items():
            if coordinate[axis] != value:
                continue
            reduced = coordinate[:axis] + coordinate[axis + 1 :]
            cells.setdefault(reduced, []).extend(values)
        dimensions = [d for d in self.dimensions if d != dimension]
        return Cube(dimensions, self.measure, cells)

    def dice(self, dimension, values):
        """Keep only cells whose coordinate is in ``values``."""
        axis = self._axis(dimension)
        allowed = set(values)
        cells = {
            coordinate: list(cell_values)
            for coordinate, cell_values in self._cells.items()
            if coordinate[axis] in allowed
        }
        return Cube(list(self.dimensions), self.measure, cells)

    def rollup(self, keep_dimensions):
        """Aggregate away all dimensions not in ``keep_dimensions``."""
        axes = [self._axis(dimension) for dimension in keep_dimensions]
        cells = {}
        for coordinate, values in self._cells.items():
            reduced = tuple(coordinate[axis] for axis in axes)
            cells.setdefault(reduced, []).extend(values)
        return Cube(list(keep_dimensions), self.measure, cells)

    def drilldown_from(self, coarse_dimensions):
        """Return this cube's dimensions finer than a rolled-up view.

        Drill-down is re-expansion toward the base cube; callers keep
        the base cube around and roll up less aggressively.
        """
        return [d for d in self.dimensions if d not in coarse_dimensions]

    # -- aggregation -------------------------------------------------------------

    def aggregate(self, agg="sum", group_by=None):
        """Aggregate the measure, optionally grouped.

        Without ``group_by`` returns a scalar; with it, a dict mapping
        group coordinates (tuples) to aggregated values.
        """
        if group_by is None:
            all_values = []
            for values in self._cells.values():
                all_values.extend(values)
            return aggregate(agg, all_values)
        rolled = self.rollup(group_by)
        return {
            coordinate: aggregate(agg, values)
            for coordinate, values in rolled._cells.items()
        }

    def pivot(self, row_dimension, column_dimension, agg="sum"):
        """A 2-D pivot table: {row: {column: aggregated value}}."""
        grouped = self.aggregate(
            agg=agg, group_by=[row_dimension, column_dimension]
        )
        table = {}
        for (row_value, column_value), value in grouped.items():
            table.setdefault(row_value, {})[column_value] = value
        return table

    def __repr__(self):
        return (
            f"Cube(dimensions={self.dimensions}, measure={self.measure!r}, "
            f"cells={len(self._cells)})"
        )
