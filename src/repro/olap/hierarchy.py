"""Dimension hierarchies for multi-level roll-ups.

A hierarchy maps members of a base dimension to coarser levels (e.g.
country -> continent -> all).  SEDA's generated dimensions are flat;
hierarchies let the OLAP layer support the customary drill paths on
top of them.
"""


class Hierarchy:
    """Named levels over one dimension.

    ``levels`` is an ordered list of ``(level_name, mapping)`` pairs
    from finest to coarsest; each mapping takes a base member to its
    ancestor at that level (dict or callable).  Unmapped members roll
    into ``other``.
    """

    def __init__(self, dimension, levels, other="(other)"):
        self.dimension = dimension
        self.levels = []
        self.other = other
        for name, mapping in levels:
            if callable(mapping):
                self.levels.append((name, mapping))
            else:
                table = dict(mapping)
                self.levels.append(
                    (name, lambda member, table=table: table.get(member))
                )
        self._level_names = [name for name, _ in self.levels]

    def level_names(self):
        return list(self._level_names)

    def map_member(self, member, level_name):
        """The ancestor of ``member`` at ``level_name``."""
        for name, mapping in self.levels:
            if name == level_name:
                value = mapping(member)
                return value if value is not None else self.other
        raise KeyError(
            f"unknown level {level_name!r}; hierarchy has {self._level_names}"
        )

    def rollup_cube(self, cube, level_name):
        """A new cube with this hierarchy's dimension coarsened.

        The dimension keeps its position but its coordinates become
        level members; cells merge accordingly.
        """
        from repro.olap.cube import Cube

        axis = cube.dimensions.index(self.dimension)
        cells = {}
        for coordinate, values in cube._cells.items():
            mapped = self.map_member(coordinate[axis], level_name)
            new_coordinate = (
                coordinate[:axis] + (mapped,) + coordinate[axis + 1 :]
            )
            cells.setdefault(new_coordinate, []).extend(values)
        dimensions = list(cube.dimensions)
        dimensions[axis] = f"{self.dimension}:{level_name}"
        return Cube(dimensions, cube.measure, cells)
