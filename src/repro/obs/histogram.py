"""Fixed log-scale latency histograms with percentile estimation.

A latency distribution is retained as counts over a fixed set of
exponentially growing buckets (1 microsecond doubling up to ~9
minutes): constant memory per fingerprint regardless of traffic, and
mergeable across processes by adding count arrays.

Percentiles are estimated by the nearest-rank rule over the bucket
counts: the estimate for quantile ``q`` is the **upper edge** of the
bucket containing the rank-``ceil(q * n)``-th smallest sample.  Since
bucket assignment is monotone in the observed value, that sample
really lies in that bucket, so the true sample percentile is always
bracketed by the bucket's ``(lower, upper]`` bounds -- the property
``tests/test_obs_properties.py`` checks.  Bucket edges and bucket
lookup share one precomputed table (``bisect`` over the edges), so
the bracket guarantee is exact, not subject to float-log rounding.
"""

import bisect
import math

#: First bucket upper edge: 1 microsecond.
_BASE = 1e-6
#: Geometric growth factor between bucket edges.
_RATIO = 2.0
#: Bucket count; the last edge is ~549 s, observations beyond clamp in.
_BUCKET_COUNT = 40

#: Upper edges, ascending: bucket ``i`` covers ``(edge[i-1], edge[i]]``
#: (bucket 0 covers ``[0, edge[0]]``).
_EDGES = tuple(_BASE * _RATIO**index for index in range(_BUCKET_COUNT))


class LatencyHistogram:
    """Counts of observed latencies (seconds) in log-scale buckets."""

    __slots__ = ("counts", "total")

    def __init__(self, counts=None):
        if counts is None:
            self.counts = [0] * _BUCKET_COUNT
        else:
            counts = [int(value) for value in counts]
            if len(counts) > _BUCKET_COUNT or any(
                value < 0 for value in counts
            ):
                raise ValueError(
                    f"histogram counts must be <= {_BUCKET_COUNT} "
                    f"non-negative integers"
                )
            self.counts = counts + [0] * (_BUCKET_COUNT - len(counts))
        self.total = sum(self.counts)

    @staticmethod
    def bucket_index(seconds):
        """The bucket an observation of ``seconds`` lands in."""
        if seconds <= _EDGES[0]:
            return 0
        return min(bisect.bisect_left(_EDGES, seconds), _BUCKET_COUNT - 1)

    @staticmethod
    def bucket_bounds(index):
        """``(lower, upper]`` edges of bucket ``index`` in seconds."""
        lower = 0.0 if index == 0 else _EDGES[index - 1]
        return lower, _EDGES[index]

    def observe(self, seconds):
        """Record one latency observation."""
        self.counts[self.bucket_index(seconds)] += 1
        self.total += 1

    def merge(self, other):
        """Fold another histogram's counts into this one."""
        for index, value in enumerate(other.counts):
            self.counts[index] += value
        self.total += other.total
        return self

    def _quantile_bucket(self, q):
        """Bucket index holding the nearest-rank sample for ``q``."""
        if self.total == 0:
            return None
        rank = max(1, math.ceil(q * self.total))
        cumulative = 0
        for index, count in enumerate(self.counts):
            cumulative += count
            if cumulative >= rank:
                return index
        return _BUCKET_COUNT - 1  # unreachable; counts sum to total

    def quantile(self, q):
        """Estimated ``q``-quantile in seconds (0.0 when empty)."""
        index = self._quantile_bucket(q)
        if index is None:
            return 0.0
        return self.bucket_bounds(index)[1]

    def bracket(self, q):
        """``(lower, upper)`` bounds enclosing the true ``q``-quantile.

        ``None`` when the histogram is empty.  For in-range samples the
        true nearest-rank sample percentile satisfies
        ``lower < value <= upper``.
        """
        index = self._quantile_bucket(q)
        if index is None:
            return None
        return self.bucket_bounds(index)

    @property
    def p50(self):
        return self.quantile(0.50)

    @property
    def p95(self):
        return self.quantile(0.95)

    @property
    def p99(self):
        return self.quantile(0.99)

    # -- persistence ----------------------------------------------------------

    def to_dict(self):
        """JSON-clean form; trailing zero buckets are trimmed."""
        counts = list(self.counts)
        while counts and counts[-1] == 0:
            counts.pop()
        return {"counts": counts}

    @classmethod
    def from_dict(cls, payload):
        return cls(counts=payload.get("counts", ()))

    def __repr__(self):
        return (
            f"LatencyHistogram(total={self.total}, "
            f"p50={self.p50 * 1000:.3f}ms, p99={self.p99 * 1000:.3f}ms)"
        )
