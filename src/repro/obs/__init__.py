"""Observability: retained serving statistics, slow-query log, EXPLAIN.

Every statistic the serving layer produces (`QueryStats`, `BatchStats`)
is a per-call return value that evaporates when the caller drops it.
This package is the retained layer an operator reads *after the fact*:

* :func:`~repro.obs.fingerprint.query_fingerprint` -- canonical query
  identity: analyzer-normalized terms, sorted, plus ``k``.  Whitespace,
  case, and term-order spellings of one query share one fingerprint.
* :class:`~repro.obs.registry.StatsRegistry` -- a thread-safe map of
  fingerprint -> execution counts, cache-hit/prune/early-stop rates,
  log-scale latency histograms (p50/p95/p99), and per-shard skew, plus
  a bounded ring buffer of slow queries over a latency threshold.
* :func:`~repro.obs.explain.explain` -- one query's EXPLAIN report:
  per-term streams and candidate counts, sorted accesses, tuples
  scored vs. pruned, which combine path ran, and why the TA loop
  stopped (corner bound vs. exhaustion).

The registry threads through :class:`~repro.service.query_service.
QueryService` and :class:`~repro.shard.service.ShardedQueryService`
(opt-in via ``Seda.enable_observability()``; zero overhead when
absent) and persists alongside snapshots, so a reloaded service keeps
its history.  ``repro stats --queries/--json`` and ``repro explain``
expose both on the command line; see docs/OPERATIONS.md ("Slow-query
triage").
"""

from repro.obs.explain import ExplainReport, explain
from repro.obs.fingerprint import query_fingerprint, term_fingerprint
from repro.obs.histogram import LatencyHistogram
from repro.obs.registry import FingerprintStats, StatsRegistry

__all__ = [
    "ExplainReport",
    "explain",
    "query_fingerprint",
    "term_fingerprint",
    "LatencyHistogram",
    "FingerprintStats",
    "StatsRegistry",
]
