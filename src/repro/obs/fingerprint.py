"""Normalized query fingerprints: one stable name per logical query.

A fingerprint is the retained-statistics key (CockroachDB-style
statement fingerprinting): every spelling of the same logical query
must map to one string, so its executions aggregate into one row of
the stats registry.

Normalization happens in two layers:

* **Parsing** already canonicalizes spellings: keywords run through
  the analyzer (case, punctuation, whitespace), ``""``/``"*"``
  contexts collapse to :class:`~repro.query.term.EmptyContext`, and
  bags of keywords parse to one :class:`~repro.query.ast.And`.
* **Rendering** here canonicalizes *structure*: term order, And/Or
  operand order, and context-disjunction order are sorted away
  (tuple column order matters for presentation, not for identity),
  and the AST is rendered back to query syntax -- so a fingerprint is
  human-readable and re-parses to the same fingerprint (idempotence,
  property-tested).

``k`` is part of the fingerprint: the same terms at a different cut-off
run a different search (different stopping point, different latencies)
and must aggregate separately.
"""

from repro.query.ast import And, Keyword, MatchAll, Not, Or, Phrase
from repro.query.term import (
    ContextDisjunction,
    EmptyContext,
    PathContext,
    TagContext,
)

#: Bare keywords that would lex as operators (or the match-all star)
#: if rendered unquoted; they render in phrase quotes instead -- a
#: one-word phrase re-parses to the same :class:`Keyword`.
_RESERVED = frozenset(("and", "or", "not", "*"))


def _render_search(expr):
    """Canonical query-syntax rendering of a search AST."""
    if isinstance(expr, MatchAll):
        return "*"
    if isinstance(expr, Keyword):
        if expr.term in _RESERVED:
            return f'"{expr.term}"'
        return expr.term
    if isinstance(expr, Phrase):
        return '"' + " ".join(expr.words) + '"'
    if isinstance(expr, And):
        return " ".join(
            sorted(_render_operand(child) for child in expr.children)
        )
    if isinstance(expr, Or):
        rendered = sorted(_render_operand(child) for child in expr.children)
        return "(" + " OR ".join(rendered) + ")"
    if isinstance(expr, Not):
        return "NOT " + _render_operand(expr.child)
    raise TypeError(f"cannot fingerprint search expression {expr!r}")


def _render_operand(expr):
    """Like :func:`_render_search`, parenthesizing nested booleans.

    ``And``/``Or`` operands inside another boolean need parentheses to
    re-parse with the same shape (the parser flattens juxtaposition).
    """
    rendered = _render_search(expr)
    if isinstance(expr, And):
        return f"({rendered})"
    return rendered  # Or already renders parenthesized


def _render_context(context):
    """Canonical context-spec rendering (the ``parse_context`` syntax)."""
    if isinstance(context, EmptyContext):
        return "*"
    if isinstance(context, TagContext):
        return context.pattern
    if isinstance(context, PathContext):
        return context.path
    if isinstance(context, ContextDisjunction):
        return "|".join(
            sorted(_render_context(alt) for alt in context.alternatives)
        )
    raise TypeError(f"cannot fingerprint context {context!r}")


def term_fingerprint(term):
    """One term's canonical ``context:search`` rendering."""
    return f"{_render_context(term.context)}:{_render_search(term.search)}"


def query_fingerprint(query, k):
    """The canonical retained-statistics key for ``(query, k)``.

    Terms are rendered canonically and **sorted**: result-tuple column
    order depends on term order, but the work a query does (streams,
    combines, stopping point) does not, so order variants aggregate
    into one fingerprint row.
    """
    terms = sorted(term_fingerprint(term) for term in query.terms)
    return " ;; ".join(terms) + f" [k={k}]"
