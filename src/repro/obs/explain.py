"""EXPLAIN: one query's execution profile from the TA searcher.

:func:`explain` runs a query through a :class:`~repro.search.topk.
TopKSearcher` and packages the searcher's per-query ``stats`` into an
:class:`ExplainReport`: which streams were opened and how large each
term's candidate set was, how many sorted accesses each stream served,
how many candidate tuples were scored vs. pruned by the upper bound,
which combine path ran (``single``/``pair``/``triple``/``general``),
and **why the TA loop stopped** -- ``corner-bound`` (the rank-join
threshold certified the top-k early) vs. ``exhaustion`` (every stream
was drained), plus the degenerate ``empty-stream``/``k-satisfied``/
``k-zero`` cases.

The report's counters are exactly ``searcher.stats`` -- no separate
instrumentation path that could drift from what the search really did
(acceptance-tested in ``tests/test_obs.py``).  ``repro explain``
renders it on the command line.
"""

from repro.obs.fingerprint import query_fingerprint, term_fingerprint
from repro.query.term import Query


class ExplainReport:
    """One query's execution profile, renderable as text or JSON."""

    def __init__(self, fingerprint, k, per_term, sorted_accesses,
                 tuples_scored, pruned, path, stop_reason, early_stop,
                 results):
        self.fingerprint = fingerprint
        self.k = k
        #: One dict per term, in query order: ``{"term", "candidates",
        #: "sorted_accesses"}``.
        self.per_term = [dict(entry) for entry in per_term]
        self.sorted_accesses = sorted_accesses
        self.tuples_scored = tuples_scored
        self.pruned = pruned
        self.path = path
        self.stop_reason = stop_reason
        self.early_stop = early_stop
        self.results = list(results)

    def as_dict(self):
        """JSON-clean form (``repro explain --json``)."""
        return {
            "fingerprint": self.fingerprint,
            "k": self.k,
            "per_term": [dict(entry) for entry in self.per_term],
            "sorted_accesses": self.sorted_accesses,
            "tuples_scored": self.tuples_scored,
            "pruned": self.pruned,
            "path": self.path,
            "stop_reason": self.stop_reason,
            "early_stop": self.early_stop,
            "results": [
                {"node_ids": list(result.node_ids), "score": result.score}
                for result in self.results
            ],
        }

    def render(self):
        """The human-readable EXPLAIN text."""
        lines = [
            f"EXPLAIN {self.fingerprint}",
            f"  combine path: {self.path}",
            f"  streams opened: {len(self.per_term)}",
        ]
        for entry in self.per_term:
            lines.append(
                f"    {entry['term']}: {entry['candidates']} candidates, "
                f"{entry['sorted_accesses']} sorted accesses"
            )
        considered = self.tuples_scored + self.pruned
        lines.append(
            f"  tuples: {self.tuples_scored} scored, {self.pruned} pruned "
            f"by the score bound ({considered} considered)"
        )
        lines.append(
            f"  sorted accesses: {self.sorted_accesses} total"
        )
        lines.append(
            f"  stopped: {self.stop_reason} "
            f"(early_stop={self.early_stop})"
        )
        lines.append(f"  results: {len(self.results)}")
        for result in self.results:
            lines.append(
                f"    score={result.score:.6f}  "
                f"nodes={list(result.node_ids)}"
            )
        return "\n".join(lines)

    def __repr__(self):
        return (
            f"ExplainReport({self.fingerprint!r}, path={self.path}, "
            f"stop={self.stop_reason})"
        )


def explain(searcher, query, k=10):
    """Run ``query`` through ``searcher`` and report how it executed.

    ``query`` is a :class:`Query` or a list of ``(context, search)``
    pairs.  The search itself is a perfectly ordinary
    :meth:`TopKSearcher.search` call -- results are byte-identical to
    searching without EXPLAIN; the report just retains the searcher's
    per-query counters before the next query overwrites them.
    """
    if not isinstance(query, Query):
        query = Query.parse(query)
    results = searcher.search(query, k=k)
    raw = dict(searcher.stats)
    candidates = raw.get("candidates", [])
    accesses = raw.get("per_term_accesses", [])
    per_term = []
    for index, term in enumerate(query.terms):
        per_term.append({
            "term": term_fingerprint(term),
            "candidates": (
                candidates[index] if index < len(candidates) else 0
            ),
            "sorted_accesses": (
                accesses[index] if index < len(accesses) else 0
            ),
        })
    return ExplainReport(
        fingerprint=query_fingerprint(query, k),
        k=k,
        per_term=per_term,
        sorted_accesses=raw["sorted_accesses"],
        tuples_scored=raw["tuples_scored"],
        pruned=raw["pruned"],
        path=raw.get("path"),
        stop_reason=raw.get("stop_reason"),
        early_stop=raw["early_stop"],
        results=results,
    )
