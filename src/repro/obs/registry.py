"""The retained, thread-safe statistics registry and slow-query log.

One :class:`StatsRegistry` outlives individual queries: the serving
facades (:class:`~repro.service.query_service.QueryService`,
:class:`~repro.shard.service.ShardedQueryService`) record every served
query's :class:`~repro.service.stats.QueryStats` under its normalized
fingerprint, and an operator later reads per-fingerprint execution
counts, cache-hit/prune/early-stop rates, latency percentiles, and
per-shard skew -- ``repro stats --queries/--json`` renders exactly
this object.

Two retained structures:

* ``fingerprints`` -- fingerprint -> :class:`FingerprintStats`
  (counters plus a :class:`~repro.obs.histogram.LatencyHistogram`).
* the **slow-query log** -- a bounded ring buffer
  (``collections.deque(maxlen=...)``) of the full stats records of
  queries at or above ``slow_threshold`` seconds; old entries fall
  off, so a long-running service retains the recent offenders at
  constant memory.

All mutation and snapshotting happens under one lock -- recording is a
handful of integer adds, so the lock is never contended long enough to
matter next to a search.  ``to_dict``/``from_dict`` round-trip the
whole registry through JSON; :meth:`Seda.snapshot_payload` embeds it
as the optional ``obs`` snapshot record and sharded directories carry
it as ``obs.json``, so a reloaded service keeps its history.
"""

import collections
import threading

from repro.obs.histogram import LatencyHistogram

#: Per-shard counters folded from ``ShardedQueryStats.per_shard``.
_SHARD_COUNTERS = ("sorted_accesses", "tuples_scored", "pruned")


class FingerprintStats:
    """Retained counters for one query fingerprint."""

    __slots__ = (
        "fingerprint",
        "count",
        "cache_hits",
        "early_stops",
        "sorted_accesses",
        "tuples_scored",
        "pruned",
        "histogram",
        "per_shard",
    )

    def __init__(self, fingerprint):
        self.fingerprint = fingerprint
        self.count = 0
        self.cache_hits = 0
        self.early_stops = 0
        self.sorted_accesses = 0
        self.tuples_scored = 0
        self.pruned = 0
        self.histogram = LatencyHistogram()
        #: shard index (as str, for a JSON-stable round trip) ->
        #: counter dict; only scatter-gather queries populate this.
        self.per_shard = {}

    def record(self, stats):
        """Fold one served query's :class:`QueryStats` in."""
        self.count += 1
        self.cache_hits += 1 if stats.cache_hit else 0
        self.early_stops += 1 if stats.early_stop else 0
        self.sorted_accesses += stats.sorted_accesses
        self.tuples_scored += stats.tuples_scored
        self.pruned += stats.pruned
        self.histogram.observe(stats.latency)
        for entry in getattr(stats, "per_shard", ()):
            shard = self.per_shard.setdefault(
                str(entry["shard"]),
                {name: 0 for name in _SHARD_COUNTERS} | {"early_stops": 0},
            )
            for name in _SHARD_COUNTERS:
                shard[name] += entry[name]
            shard["early_stops"] += 1 if entry.get("early_stop") else 0

    # -- derived rates --------------------------------------------------------

    @property
    def cache_hit_rate(self):
        return self.cache_hits / self.count if self.count else 0.0

    @property
    def early_stop_rate(self):
        return self.early_stops / self.count if self.count else 0.0

    @property
    def prune_rate(self):
        """Pruned combos over all combos considered (scored + pruned)."""
        considered = self.tuples_scored + self.pruned
        return self.pruned / considered if considered else 0.0

    def as_dict(self):
        """JSON-clean metrics row (counters plus derived rates)."""
        return {
            "count": self.count,
            "cache_hits": self.cache_hits,
            "cache_hit_rate": self.cache_hit_rate,
            "early_stops": self.early_stops,
            "early_stop_rate": self.early_stop_rate,
            "sorted_accesses": self.sorted_accesses,
            "tuples_scored": self.tuples_scored,
            "pruned": self.pruned,
            "prune_rate": self.prune_rate,
            "p50": self.histogram.p50,
            "p95": self.histogram.p95,
            "p99": self.histogram.p99,
            "per_shard": {
                shard: dict(counters)
                for shard, counters in self.per_shard.items()
            },
        }

    # -- persistence ----------------------------------------------------------

    def to_dict(self):
        return {
            "count": self.count,
            "cache_hits": self.cache_hits,
            "early_stops": self.early_stops,
            "sorted_accesses": self.sorted_accesses,
            "tuples_scored": self.tuples_scored,
            "pruned": self.pruned,
            "histogram": self.histogram.to_dict(),
            "per_shard": {
                shard: dict(counters)
                for shard, counters in self.per_shard.items()
            },
        }

    @classmethod
    def from_dict(cls, fingerprint, payload):
        stats = cls(fingerprint)
        stats.count = int(payload["count"])
        stats.cache_hits = int(payload["cache_hits"])
        stats.early_stops = int(payload["early_stops"])
        stats.sorted_accesses = int(payload["sorted_accesses"])
        stats.tuples_scored = int(payload["tuples_scored"])
        stats.pruned = int(payload["pruned"])
        stats.histogram = LatencyHistogram.from_dict(payload["histogram"])
        stats.per_shard = {
            str(shard): {name: int(value) for name, value in counters.items()}
            for shard, counters in payload.get("per_shard", {}).items()
        }
        return stats

    def __repr__(self):
        return (
            f"FingerprintStats({self.fingerprint!r}, count={self.count}, "
            f"hit_rate={self.cache_hit_rate:.0%})"
        )


class StatsRegistry:
    """Thread-safe retained statistics keyed on query fingerprints."""

    def __init__(self, slow_threshold=0.1, slow_log_size=128):
        if slow_log_size < 1:
            raise ValueError("slow_log_size must be >= 1")
        if slow_threshold < 0:
            raise ValueError("slow_threshold must be >= 0 seconds")
        self.slow_threshold = float(slow_threshold)
        self._lock = threading.Lock()
        self._fingerprints = {}
        self._slow = collections.deque(maxlen=int(slow_log_size))
        self.total_queries = 0

    @property
    def slow_log_size(self):
        return self._slow.maxlen

    def record(self, fingerprint, stats):
        """Record one served query under its fingerprint.

        ``stats`` is a :class:`~repro.service.stats.QueryStats` (or the
        sharded subclass -- its ``per_shard`` breakdown feeds the skew
        counters).  Queries at or above the slow threshold additionally
        enter the slow-query ring buffer with their full record.
        """
        with self._lock:
            self.total_queries += 1
            entry = self._fingerprints.get(fingerprint)
            if entry is None:
                entry = FingerprintStats(fingerprint)
                self._fingerprints[fingerprint] = entry
            entry.record(stats)
            if stats.latency >= self.slow_threshold:
                self._slow.append(self._slow_entry(fingerprint, stats))

    @staticmethod
    def _slow_entry(fingerprint, stats):
        """The full (JSON-clean) record of one slow query."""
        entry = {
            "fingerprint": fingerprint,
            "k": stats.k,
            "latency": stats.latency,
            "cache_hit": bool(stats.cache_hit),
            "sorted_accesses": stats.sorted_accesses,
            "tuples_scored": stats.tuples_scored,
            "pruned": stats.pruned,
            "early_stop": bool(stats.early_stop),
        }
        per_shard = getattr(stats, "per_shard", None)
        if per_shard:
            entry["per_shard"] = [dict(shard) for shard in per_shard]
        return entry

    # -- reading --------------------------------------------------------------

    def fingerprint_stats(self):
        """Snapshot: fingerprint -> :class:`FingerprintStats` (live
        objects; treat them as read-only)."""
        with self._lock:
            return dict(self._fingerprints)

    def slow_queries(self):
        """Slow-log snapshot, oldest first (most recent last)."""
        with self._lock:
            return [dict(entry) for entry in self._slow]

    def per_shard_traffic(self):
        """Query traffic summed per shard across all fingerprints.

        Returns ``{shard_index: {"sorted_accesses": n, "tuples_scored":
        n, "pruned": n, "early_stops": n}}`` -- the per-shard work
        counters the skew report (``repro shard skew``) reads to tell a
        hot shard from a merely large one.  Shards that served no
        recorded query are absent.
        """
        totals = {}
        with self._lock:
            for entry in self._fingerprints.values():
                for shard, counters in entry.per_shard.items():
                    bucket = totals.setdefault(
                        int(shard),
                        {name: 0 for name in _SHARD_COUNTERS}
                        | {"early_stops": 0},
                    )
                    for name, value in counters.items():
                        bucket[name] = bucket.get(name, 0) + value
        return totals

    def metrics(self):
        """The full JSON-clean metrics dump (``repro stats --json``)."""
        with self._lock:
            return {
                "total_queries": self.total_queries,
                "slow_threshold": self.slow_threshold,
                "fingerprints": {
                    fingerprint: entry.as_dict()
                    for fingerprint, entry in sorted(
                        self._fingerprints.items()
                    )
                },
                "slow_queries": [dict(entry) for entry in self._slow],
            }

    def render_table(self):
        """The human-readable stats table (``repro stats --queries``)."""
        metrics = self.metrics()
        lines = [
            f"query statistics: {metrics['total_queries']} served, "
            f"{len(metrics['fingerprints'])} fingerprints "
            f"(slow threshold {metrics['slow_threshold'] * 1000:.1f}ms)"
        ]
        if metrics["fingerprints"]:
            lines.append(
                "  count   hits    p50ms    p95ms    p99ms  prune%  "
                "early%  fingerprint"
            )
            rows = sorted(
                metrics["fingerprints"].items(),
                key=lambda item: (-item[1]["count"], item[0]),
            )
            for fingerprint, row in rows:
                lines.append(
                    f"  {row['count']:5d}  {row['cache_hits']:5d}  "
                    f"{row['p50'] * 1000:7.2f}  {row['p95'] * 1000:7.2f}  "
                    f"{row['p99'] * 1000:7.2f}  {row['prune_rate']:5.0%}  "
                    f"{row['early_stop_rate']:5.0%}  {fingerprint}"
                )
            for fingerprint, row in rows:
                if row["per_shard"]:
                    lines.append(f"  per-shard skew for {fingerprint}:")
                    for shard in sorted(row["per_shard"], key=int):
                        counters = row["per_shard"][shard]
                        lines.append(
                            f"    shard {shard}: "
                            f"{counters['sorted_accesses']} sorted accesses, "
                            f"{counters['tuples_scored']} tuples scored, "
                            f"{counters['pruned']} pruned, "
                            f"{counters['early_stops']} early stops"
                        )
        slow = metrics["slow_queries"]
        if slow:
            lines.append(
                f"slow queries (most recent last, {len(slow)} retained):"
            )
            for entry in slow:
                source = "cache" if entry["cache_hit"] else "computed"
                lines.append(
                    f"  {entry['latency'] * 1000:9.2f}ms  "
                    f"k={entry['k']}  [{source}]  {entry['fingerprint']}"
                )
        else:
            lines.append("slow queries: none recorded")
        return "\n".join(lines)

    # -- maintenance ----------------------------------------------------------

    def clear(self):
        """Drop all retained statistics (threshold/capacity kept)."""
        with self._lock:
            self._fingerprints.clear()
            self._slow.clear()
            self.total_queries = 0

    # -- persistence ----------------------------------------------------------

    def to_dict(self):
        """JSON-clean serialized form (the ``obs`` snapshot record)."""
        with self._lock:
            return {
                "slow_threshold": self.slow_threshold,
                "slow_log_size": self._slow.maxlen,
                "total_queries": self.total_queries,
                "fingerprints": {
                    fingerprint: entry.to_dict()
                    for fingerprint, entry in sorted(
                        self._fingerprints.items()
                    )
                },
                "slow_queries": [dict(entry) for entry in self._slow],
            }

    @classmethod
    def from_dict(cls, payload):
        registry = cls(
            slow_threshold=payload.get("slow_threshold", 0.1),
            slow_log_size=payload.get("slow_log_size", 128),
        )
        registry.total_queries = int(payload.get("total_queries", 0))
        for fingerprint, record in payload.get("fingerprints", {}).items():
            registry._fingerprints[fingerprint] = FingerprintStats.from_dict(
                fingerprint, record
            )
        for entry in payload.get("slow_queries", ()):
            registry._slow.append(dict(entry))
        return registry

    def __repr__(self):
        return (
            f"StatsRegistry(queries={self.total_queries}, "
            f"fingerprints={len(self._fingerprints)}, "
            f"slow={len(self._slow)}/{self._slow.maxlen})"
        )
