"""Synthetic datasets calibrated to the paper's published statistics.

The paper evaluates on four collections (Table 1) that are not
redistributable or offline-available: a Google Base snapshot, Mondial,
RecipeML, and World Factbook 2002-2007.  Each generator here is a
deterministic synthetic equivalent that preserves the *structural
heterogeneity* driving every experiment:

* per-dataset dataguide-merge behaviour (documents-to-guides ratios of
  Table 1);
* context ambiguity ("United States" in many distinct paths, the long
  tail of infrequent paths);
* schema evolution (``GDP`` pre-2005 vs ``GDP_ppp`` from 2005 on);
* cross-document links (Mondial's geography relationships).

All generators take a ``scale`` in (0, 1] so tests can run on small
slices while benchmarks use paper-scale collections.
"""

from repro.datasets.factbook import FactbookGenerator
from repro.datasets.googlebase import GoogleBaseGenerator
from repro.datasets.mondial import MondialGenerator
from repro.datasets.recipeml import RecipeMLGenerator

__all__ = [
    "FactbookGenerator",
    "GoogleBaseGenerator",
    "MondialGenerator",
    "RecipeMLGenerator",
]
