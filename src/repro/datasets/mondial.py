"""Synthetic Mondial collection (Table 1, row 2) with cross-doc links.

The paper: 5563 documents, 86 dataguides at the 40% threshold.  The
real Mondial is "a rich compilation of geographical Web data sources"
-- countries, cities, provinces, seas, rivers, organizations -- and
supplies the non-tree relationship edges of Figure 1 (``bordering``,
membership, capital-of).

The generator emits one document per geographic entity across several
root types; each root type has a handful of structural variants (e.g.
cities with/without demographics) whose path sets overlap below the
threshold across variants and far above it within one.  Root-type x
variant combinations are calibrated to land near 86 guides.

IDREF attributes (``country="c17"`` style) connect cities, provinces,
seas, and organization memberships to country documents; the link
discoverer turns them into data-graph edges.
"""

from repro.datasets import common
from repro.model.collection import DocumentCollection
from repro.xmlio.dom import Element

# (root tag, number of structural variants, share of documents)
_ROOT_TYPES = (
    ("country", 12, 0.042),
    ("city", 20, 0.560),
    ("province", 16, 0.250),
    ("sea", 8, 0.020),
    ("river", 10, 0.050),
    ("lake", 6, 0.020),
    ("mountain", 6, 0.025),
    ("island", 4, 0.015),
    ("organization", 4, 0.018),
)

_VARIANT_FIELDS = (
    "population", "area", "elevation", "coordinates", "climate",
    "founded", "mayor", "districts", "economy_profile", "twin_city",
    "airport", "university", "heritage", "industry", "port",
    "depth", "length", "discharge", "salinity", "basin",
    "height", "range_name", "first_ascent", "volcanic",
    "abbreviation", "established", "seat", "member_count",
)


class MondialGenerator:
    """Deterministic Mondial-like generator."""

    def __init__(self, seed=1998, scale=1.0):
        if not 0.0 < scale <= 1.0:
            raise ValueError("scale must be in (0, 1]")
        self.seed = seed
        self.scale = scale

    def document_count(self):
        return max(20, round(5563 * self.scale))

    def country_count(self):
        return max(4, round(_ROOT_TYPES[0][2] * self.document_count()))

    # -- variant schemas -----------------------------------------------------

    def _variant_fields(self, root_tag, variant):
        """The field set of one (root type, variant) combination.

        Variants of one root type share a small core (name + country
        reference); each variant adds ten *variant-exclusive* fields
        (suffixed with the variant number), keeping cross-variant
        overlap below the 40% merge threshold while within-variant
        documents overlap heavily.
        """
        core = ("name", "country_ref")
        # Countries carry a larger shared core (capital, population,
        # borders), so they need more exclusive fields to stay apart.
        width = 16 if root_tag == "country" else 10
        exclusive = [
            f"{_VARIANT_FIELDS[(variant * 3 + offset) % len(_VARIANT_FIELDS)]}"
            f"_v{variant}"
            for offset in range(width)
        ]
        return core, exclusive

    def documents(self):
        """Yield ``(name, Element)``; countries first (link targets)."""
        rng = common.make_rng(self.seed)
        total = self.document_count()
        countries = self.country_count()

        for index in range(countries):
            yield f"country-{index}", self._country(rng, index)

        emitted = countries
        type_cycle = []
        for root_tag, variants, share in _ROOT_TYPES[1:]:
            count = max(1, round(share * total))
            type_cycle.append([root_tag, variants, count, 0])
        position = 0
        city_count = 0
        while emitted < total:
            entry = type_cycle[position % len(type_cycle)]
            root_tag, variants, count, produced = entry
            if count > 0:
                # Per-type counters drive the variant so every variant
                # of every root type is instantiated (a global counter
                # would alias with the type rotation).
                variant = produced % variants
                yield (
                    f"{root_tag}-{emitted}",
                    self._entity(rng, root_tag, variant, emitted, countries),
                )
                entry[2] -= 1
                entry[3] += 1
                if root_tag == "city":
                    city_count += 1
                emitted += 1
            position += 1
            if all(entry[2] <= 0 for entry in type_cycle):
                # Exhausted shares; top up with cities.
                while emitted < total:
                    yield (
                        f"city-{emitted}",
                        self._entity(rng, "city", city_count % 20, emitted,
                                     countries),
                    )
                    city_count += 1
                    emitted += 1

    def build_collection(self):
        collection = DocumentCollection(name="mondial")
        for name, root in self.documents():
            collection.add_document(root, name=name)
        return collection

    # -- documents ---------------------------------------------------------------

    def _country(self, rng, index):
        variant = index % _ROOT_TYPES[0][1]
        root = Element("country", {"id": f"c{index}"})
        root.element("name", text=f"Country {index}")
        root.element("capital", text=common.random_words(rng, 1))
        root.element("population", text=str(rng.randint(10_000, 900_000_000)))
        _core, exclusive = self._variant_fields("country", variant)
        # The first 13 exclusive fields are mandatory: a sparse document
        # would otherwise overlap a foreign variant above the merge
        # threshold and collapse two guides into one.
        for position, field in enumerate(exclusive):
            if position < 13 or rng.random() < 0.85:
                root.element(field, text=common.random_words(rng, 2))
        borders = root.element("borders")
        for _ in range(rng.randint(0, 3)):
            borders.element(
                "border", {"ref": f"c{rng.randrange(max(1, index))}"},
                text=str(rng.randint(10, 4000)),
            )
        return root

    def _entity(self, rng, root_tag, variant, index, countries):
        root = Element(root_tag, {"id": f"{root_tag[0]}{index}"})
        root.element("name", text=f"{root_tag.title()} {index}")
        country_ref = f"c{rng.randrange(countries)}"
        root.element("country_ref", {"ref": country_ref})
        _core, exclusive = self._variant_fields(root_tag, variant)
        # First 7 fields mandatory; see _country for the rationale.
        for position, field in enumerate(exclusive):
            if position < 7 or rng.random() < 0.85:
                root.element(field, text=common.random_words(rng, 2))
        return root
