"""Synthetic Google Base snapshot (Table 1, row 1).

The paper: 10000 documents, 88 dataguides after merging at the 40%
threshold -- "for datasets, such as the Google Base, where the data
schema is flat and regular, we observe a reduction of up to two orders
of magnitude."

The generator mirrors that shape: 88 item types, each with a flat,
regular attribute schema; documents of one type differ only in which
optional attributes they fill in, keeping within-type overlap far
above the threshold, while the small shared core (title/price/...)
keeps cross-type overlap below it.
"""

from repro.datasets import common
from repro.model.collection import DocumentCollection
from repro.xmlio.dom import Element

ITEM_TYPES = 88

_CATEGORY_WORDS = (
    "vehicle housing job event product service recipe review course "
    "ticket rental furniture camera laptop phone bicycle guitar piano "
    "sofa table lamp rug boat trailer tractor printer monitor keyboard "
    "router speaker amplifier turntable projector scanner drone tent "
    "kayak canoe surfboard snowboard ski skate helmet jacket boot glove "
    "watch ring necklace bracelet earring wallet handbag suitcase "
    "backpack stroller crib highchair playpen swing slide trampoline "
    "grill smoker blender mixer toaster kettle vacuum heater fan "
    "conditioner humidifier purifier generator compressor welder drill "
    "saw sander lathe anvil forge loom wheel easel brush canvas frame "
    "telescope microscope binocular sextant compass barometer"
).split()

_SHARED_FIELDS = ("title", "price", "location", "posted")


class GoogleBaseGenerator:
    """Deterministic Google Base-like generator."""

    def __init__(self, seed=88, scale=1.0, item_types=ITEM_TYPES):
        if not 0.0 < scale <= 1.0:
            raise ValueError("scale must be in (0, 1]")
        self.seed = seed
        self.scale = scale
        self.item_types = item_types

    def document_count(self):
        return max(self.item_types, round(10000 * self.scale))

    def _type_fields(self, type_index):
        """The attribute schema of one item type: 14 specific fields."""
        base_word = _CATEGORY_WORDS[type_index % len(_CATEGORY_WORDS)]
        return [
            f"{base_word}_{suffix}"
            for suffix in (
                "brand", "model", "condition", "color", "year", "size",
                "weight", "material", "warranty", "rating", "seller",
                "shipping", "stock", "sku",
            )
        ]

    def documents(self):
        """Yield ``(name, Element)`` item documents."""
        rng = common.make_rng(self.seed)
        total = self.document_count()
        for index in range(total):
            type_index = index % self.item_types
            fields = self._type_fields(type_index)
            root = Element("item")
            for field in _SHARED_FIELDS:
                root.element(field, text=common.random_words(rng, 2))
            # Regular schema: nearly all type fields present, a couple
            # optionally dropped -- well above the merge threshold.
            for field in fields:
                if rng.random() < 0.9:
                    root.element(field, text=common.random_words(rng, 1))
            yield f"item-{type_index}-{index}", root

    def build_collection(self):
        collection = DocumentCollection(name="google-base")
        for name, root in self.documents():
            collection.add_document(root, name=name)
        return collection
