"""Synthetic RecipeML collection (Table 1, row 3).

The paper: 10988 documents collapsing to just 3 dataguides at the 40%
threshold -- RecipeML documents are highly regular, with three broad
structural variants.  The generator emits three templates (a basic
recipe, a detailed recipe with nutrition, and a menu of sub-recipes);
within a template, documents drop a few optional leaves (staying far
above the merge threshold), while the templates pairwise overlap below
it.
"""

from repro.datasets import common
from repro.model.collection import DocumentCollection
from repro.xmlio.dom import Element

_INGREDIENTS = (
    "flour sugar butter salt yeast milk egg vanilla cinnamon nutmeg "
    "basil oregano thyme garlic onion tomato pepper olive chicken beef "
    "pork lamb rice pasta bean lentil carrot celery potato leek"
).split()


class RecipeMLGenerator:
    """Deterministic RecipeML-like generator with 3 structural variants."""

    def __init__(self, seed=3, scale=1.0):
        if not 0.0 < scale <= 1.0:
            raise ValueError("scale must be in (0, 1]")
        self.seed = seed
        self.scale = scale

    def document_count(self):
        return max(3, round(10988 * self.scale))

    def documents(self):
        rng = common.make_rng(self.seed)
        total = self.document_count()
        builders = (self._basic, self._detailed, self._menu)
        for index in range(total):
            builder = builders[index % 3]
            yield f"recipe-{index}", builder(rng, index)

    def build_collection(self):
        collection = DocumentCollection(name="recipeml")
        for name, root in self.documents():
            collection.add_document(root, name=name)
        return collection

    # -- templates ----------------------------------------------------------

    def _head(self, rng, root):
        head = root.element("head")
        head.element("title", text=common.random_words(rng, 3))
        head.element("source", text=common.random_words(rng, 2))
        return head

    def _ingredients(self, rng, parent, detailed):
        ingredients = parent.element("ing-div")
        for _ in range(rng.randint(3, 6)):
            ing = ingredients.element("ing")
            amount = ing.element("amt")
            amount.element("qty", text=str(rng.randint(1, 500)))
            amount.element("unit", text=rng.choice(("g", "ml", "cup", "tsp")))
            ing.element("item", text=rng.choice(_INGREDIENTS))
            if detailed and rng.random() < 0.7:
                ing.element("prep", text=rng.choice(
                    ("chopped", "diced", "minced", "sliced")
                ))
        return ingredients

    def _directions(self, rng, parent):
        directions = parent.element("directions")
        for _ in range(rng.randint(2, 5)):
            directions.element("step", text=common.random_words(rng, 8))
        return directions

    def _basic(self, rng, index):
        """Variant 1: head + ingredients + directions.

        ``yield`` is always present (and absent from variant 2) so that
        a basic document is never a path-subset of the detailed guide,
        which would silently absorb it and distort the Table 1 counts.
        """
        root = Element("recipeml")
        recipe = root.element("recipe")
        self._head(rng, recipe)
        self._ingredients(rng, recipe, detailed=False)
        self._directions(rng, recipe)
        recipe.element("yield", text=str(rng.randint(2, 12)))
        if rng.random() < 0.5:
            recipe.element("note", text=common.random_words(rng, 4))
        return root

    def _detailed(self, rng, index):
        """Variant 2: nutrition (value/unit leaves) and equipment.

        The nutrition subtree is deliberately deep (each field carries
        ``value`` and ``unit`` children) so that the detailed variant's
        path set is large enough to keep its overlap with the basic
        variant below the 40% merge threshold, mirroring the real
        RecipeML DTD's optional nutrition block.
        """
        root = Element("recipeml")
        recipe = root.element("recipe")
        self._head(rng, recipe)
        self._ingredients(rng, recipe, detailed=True)
        self._directions(rng, recipe)
        nutrition = recipe.element("nutrition")
        for field in ("calories", "fat", "protein", "carbohydrates",
                      "sodium", "fiber", "cholesterol"):
            if rng.random() < 0.9:
                entry = nutrition.element(field)
                entry.element("value", text=f"{rng.uniform(0, 900):.0f}")
                entry.element("unit", text=rng.choice(("g", "mg", "kcal")))
        equipment = recipe.element("equipment")
        for _ in range(rng.randint(1, 3)):
            equipment.element("tool", text=rng.choice(
                ("whisk", "skillet", "oven", "blender", "dutch-oven")
            ))
        recipe.element("preptime", text=f"{rng.randint(5, 90)} min")
        recipe.element("cooktime", text=f"{rng.randint(5, 240)} min")
        return root

    def _menu(self, rng, index):
        """Variant 3: a menu composed of brief course entries."""
        root = Element("recipeml")
        menu = root.element("menu")
        head = menu.element("head")
        head.element("title", text=common.random_words(rng, 3))
        head.element("cuisine", text=rng.choice(
            ("french", "italian", "thai", "mexican", "indian")
        ))
        for _ in range(rng.randint(2, 4)):
            course = menu.element("course")
            course.element("name", text=common.random_words(rng, 2))
            course.element("serving", text=str(rng.randint(1, 8)))
            if rng.random() < 0.6:
                course.element("wine-pairing", text=common.random_words(rng, 2))
        menu.element("occasion", text=rng.choice(
            ("dinner", "brunch", "banquet", "picnic")
        ))
        return root
