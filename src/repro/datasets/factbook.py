"""Synthetic World Factbook 2002-2007 (+ Mondial-style links).

Calibrated to the paper's published statistics at ``scale=1.0``:

* 1600 documents, of which 1577 are ``/country`` documents ("/country
  ... occurs in 1577 out of 1600 documents") and 23 have other roots
  (seas, organizations);
* roughly 1984 distinct root-to-leaf paths with a long tail of
  infrequent ones;
* the phrase "United States" occurring in 27 distinct paths (Section
  1: the query term ``(*, "United States")`` "actually matches not 3,
  but 27 paths");
* ``/country/transnational_issues/refugees/country_of_origin`` in 186
  documents;
* schema evolution: documents before 2005 carry
  ``/country/economy/GDP``, later ones ``/country/economy/GDP_ppp``;
* the exact Example 1 / Figure 2 / Figure 3 data for United States and
  Mexico, so the Query 1 walk-through reproduces the paper's tables.

The optional-section machinery is tuned so that greedy dataguide
merging at the 40% threshold lands near the paper's 500 guides.
"""

from repro.cube.keys import RelativeKey
from repro.datasets import common
from repro.model.collection import DocumentCollection
from repro.model.links import ValueLinkSpec
from repro.xmlio.dom import Element

YEARS = (2002, 2003, 2004, 2005, 2006, 2007)

COUNTRY_NAMES = (
    "United States", "China", "Canada", "Mexico", "Germany", "France",
    "Italy", "Spain", "Portugal", "Romania", "Hungary", "Poland",
    "Austria", "Belgium", "Netherlands", "Denmark", "Norway", "Sweden",
    "Finland", "Iceland", "Ireland", "United Kingdom", "Switzerland",
    "Greece", "Turkey", "Russia", "Ukraine", "Belarus", "Georgia",
    "Armenia", "Azerbaijan", "Kazakhstan", "Uzbekistan", "India",
    "Pakistan", "Bangladesh", "Nepal", "Bhutan", "Sri Lanka", "Myanmar",
    "Thailand", "Vietnam", "Laos", "Cambodia", "Malaysia", "Singapore",
    "Indonesia", "Philippines", "Japan", "Mongolia", "Australia",
    "Argentina", "Brazil", "Chile", "Peru", "Bolivia", "Colombia",
    "Venezuela", "Ecuador", "Uruguay", "Paraguay", "Egypt", "Libya",
    "Tunisia", "Algeria", "Morocco", "Nigeria", "Ghana", "Kenya",
    "Ethiopia", "Tanzania", "Uganda", "Senegal", "Mali", "Chad",
    "Sudan", "Angola", "Zambia", "Zimbabwe", "Botswana", "Namibia",
    "Mozambique", "Madagascar", "Cameroon", "Gabon", "Congo",
    "South Africa", "Israel", "Jordan", "Lebanon", "Syria", "Iraq",
    "Iran", "Kuwait", "Qatar", "Bahrain", "Oman", "Yemen",
    "Saudi Arabia", "Afghanistan", "Tajikistan", "Kyrgyzstan",
    "Turkmenistan", "Estonia", "Latvia", "Lithuania", "Moldova",
    "Slovakia", "Slovenia", "Croatia", "Serbia", "Albania", "Macedonia",
    "Bulgaria", "Cyprus", "Malta", "Luxembourg", "Panama", "Cuba",
    "Haiti", "Jamaica", "Honduras", "Guatemala", "Nicaragua", "Belize",
    "Costa Rica", "El Salvador", "Dominican Republic", "Bahamas",
    "Barbados", "Trinidad", "Guyana", "Suriname", "Fiji", "Samoa",
    "Tonga", "Vanuatu", "Palau", "Micronesia", "Kiribati", "Tuvalu",
    "Nauru", "Maldives", "Seychelles", "Mauritius", "Comoros",
    "Djibouti", "Eritrea", "Somalia", "Rwanda", "Burundi", "Malawi",
    "Lesotho", "Swaziland", "Gambia", "Guinea", "Liberia",
    "Sierra Leone", "Togo", "Benin", "Niger", "Mauritania",
    "Burkina Faso", "Ivory Coast", "Cape Verde", "San Marino",
    "Monaco", "Liechtenstein", "Andorra", "Vatican", "Greenland",
    "Taiwan", "South Korea", "North Korea", "Brunei", "East Timor",
    "Papua New Guinea", "Solomon Islands", "New Zealand", "Bosnia",
    "Montenegro", "Kosovo", "Czech Republic", "Antarctica", "Aruba",
    "Bermuda", "Gibraltar", "Guam", "Puerto Rico", "Martinique",
    "Reunion", "Mayotte", "Curacao", "Anguilla", "Montserrat",
    "Dominica", "Grenada", "Saint Lucia", "Saint Vincent", "Tokelau",
    "Niue", "Pitcairn", "Wallis and Futuna", "French Polynesia",
    "New Caledonia", "Cook Islands", "Norfolk Island",
    "Christmas Island", "Cocos Islands", "Faroe Islands",
    "Isle of Man", "Jersey", "Guernsey", "Svalbard", "Western Sahara",
    "Falkland Islands", "Saint Helena", "American Samoa",
    "Northern Mariana Islands", "Marshall Islands", "Cayman Islands",
    "Turks and Caicos", "British Virgin Islands", "US Virgin Islands",
    "Saint Kitts", "Equatorial Guinea", "Guinea-Bissau",
    "Sao Tome", "Central African Republic", "Democratic Congo",
    "South Sudan", "Abkhazia", "Transnistria", "Hong Kong", "Macau",
)

# The 27 distinct contexts in which the phrase "United States" occurs
# at full scale.  The first six arise organically from the data
# scenario (Figures 1-2); the rest are the long tail of references the
# paper alludes to (matches 27 paths in the full dataset).
US_CONTEXT_PATHS = (
    "/country",
    "/country/economy/import_partners/item/trade_country",
    "/country/economy/export_partners/item/trade_country",
    "/country/transnational_issues/refugees/country_of_origin",
    "/country/geography/neighbors/neighbor",
    "/country/transnational_issues/disputes/with_country",
    "/country/economy/aid/donor",
    "/country/economy/aid/recipient_of",
    "/country/economy/currency/pegged_to",
    "/country/people/migration/destination",
    "/country/people/migration/origin",
    "/country/people/diaspora/host_country",
    "/country/government/treaties/treaty/signatory",
    "/country/government/embassies/embassy/host",
    "/country/government/allies/ally",
    "/country/military/alliances/member_with",
    "/country/military/bases/base/host_nation",
    "/country/transport/airlines/route/destination_country",
    "/country/transport/shipping/registered_in",
    "/country/communications/satellites/operated_with",
    "/country/history/colonial/administered_by",
    "/country/history/independence/independence_from",
    "/country/trade_agreements/agreement/partner",
    "/sea/bordering/country_name",
    "/organization/members/member",
    "/organization/headquarters/host_country",
    "/country/geography/maritime_claims/disputed_with",
)

# Figure 3(c): the United States import-partner fact rows.
US_IMPORT_PARTNERS = {
    2002: (("Canada", "17.8%"), ("China", "11.1%")),
    2003: (("Canada", "17.4%"), ("China", "12.1%")),
    2004: (("China", "12.5%"), ("Mexico", "10.7%")),
    2005: (("China", "13.8%"), ("Mexico", "10.3%")),
    2006: (("China", "15%"), ("Canada", "16.9%")),
    2007: (("China", "16.9%"), ("Canada", "15.7%")),
}

US_EXPORT_PARTNERS = {
    2002: (("Canada", "23.2%"),),
    2003: (("Canada", "23.4%"),),
    2004: (("Canada", "23.1%"),),
    2005: (("Canada", "23.4%"),),
    2006: (("Canada", "23.4%"),),  # Figure 1
    2007: (("Canada", "21.4%"),),
}

US_GDP = {
    2002: "10.082T",  # Figure 2(a)
    2003: "10.98T",
    2004: "11.71T",
    2005: "12.46T",
    2006: "12.31T",  # Figure 1 (GDP_ppp)
    2007: "13.86T",
}

# Figure 2(b)/(c): Mexico.
MEXICO_DATA = {
    2003: {
        "gdp": "924.4B",
        "imports": (("United States", "70.6%"), ("Germany", "3.5%")),
        "exports": (("United States", "87.6%"),),
    },
    2005: {
        "gdp": "1.006T",
        "imports": (("United States", "53.4%"), ("China", "8.0%")),
        "exports": (("United States", "15.3%"),),
    },
}

_SECTIONS = (
    ("geography", ("terrain", "climate", "elevation", "rivers", "lakes",
                   "mountains", "forests", "deserts", "coastline",
                   "irrigation", "land_use", "hazards", "volcanoes")),
    ("people", ("age_structure", "growth_rate", "birth_rate", "death_rate",
                "literacy", "languages", "religions", "urbanization",
                "health", "education", "nutrition", "life_expectancy",
                "censuses")),
    ("economy", ("inflation", "unemployment", "budget", "industries",
                 "agriculture", "exports_total", "imports_total", "debt",
                 "reserves", "labor_force", "poverty", "taxes",
                 "trade_balance")),
    ("government", ("capital", "type", "constitution", "suffrage",
                    "executive", "legislative", "judicial", "parties",
                    "elections", "flag", "anthem", "holidays")),
    ("communications", ("telephones", "mobile", "internet_users",
                        "broadcast", "newspapers", "postal", "isps",
                        "broadband", "radio", "television")),
    ("transport", ("airports", "railways", "roadways", "waterways",
                   "ports", "pipelines", "merchant_marine", "heliports")),
    ("military", ("branches", "service_age", "expenditures", "manpower",
                  "conscription", "reserves_force")),
    ("energy", ("electricity", "oil_production", "oil_consumption",
                "gas_production", "gas_consumption", "renewables",
                "nuclear", "coal", "imports_energy", "exports_energy")),
    ("environment", ("issues", "agreements", "emissions", "protected_areas",
                     "biodiversity", "water_resources", "air_quality")),
    ("culture", ("cuisine", "festivals", "sports", "music", "literature",
                 "heritage_sites", "museums", "media")),
)

_SUBLEAVES = ("overview", "detail", "rank", "note", "trend", "source",
              "estimate", "comparison", "history", "forecast", "regional",
              "per_capita", "percentile", "methodology", "definition",
              "update", "footnote", "audit")


class FactbookGenerator:
    """Deterministic World Factbook generator.

    ``scale`` scales document counts; the Example 1 / Figure 2 / Figure
    3 scenario documents (United States x 6 years, Mexico 2003/2005)
    are always included so the paper's walk-through works at any scale.
    """

    def __init__(self, seed=2009, scale=1.0, sections_low=2,
                 sections_high=5, leaf_probability=0.55,
                 popularity_bias=3.0):
        if not 0.0 < scale <= 1.0:
            raise ValueError("scale must be in (0, 1]")
        self.seed = seed
        self.scale = scale
        self.sections_low = sections_low
        self.sections_high = sections_high
        self.leaf_probability = leaf_probability
        self.popularity_bias = popularity_bias
        self._optional_universe = self._build_universe()

    # -- the optional-path universe ------------------------------------------

    @staticmethod
    def _build_universe():
        """Optional leaf paths grouped by (section, variant) topic."""
        universe = []
        for section, subsections in _SECTIONS:
            for subsection in subsections:
                group = []
                for leaf in _SUBLEAVES:
                    group.append(
                        f"/country/{section}/{subsection}/{leaf}"
                    )
                universe.append((section, group))
        return universe

    # -- document construction ---------------------------------------------------

    def country_count(self):
        return max(2, round(1577 * self.scale))

    def other_count(self):
        return max(1, round(23 * self.scale))

    def refugee_count(self):
        return max(1, round(186 * self.scale))

    def documents(self):
        """Yield ``(name, Element)`` for the whole collection."""
        rng = common.make_rng(self.seed)
        total = self.country_count()
        refugee_budget = self.refugee_count()

        produced = 0
        # Scenario documents first: United States (all years), Mexico.
        for year in YEARS:
            yield f"united-states-{year}", self._us_document(year)
            produced += 1
        for year in sorted(MEXICO_DATA):
            yield f"mexico-{year}", self._mexico_document(year)
            produced += 1

        # Remaining country documents cycle countries x years.
        names = [
            name for name in COUNTRY_NAMES
            if name not in ("United States", "Mexico")
        ]
        pairs = [
            (name, year) for year in YEARS for name in names
        ]
        index = 0
        us_paths_pending = [
            path for path in US_CONTEXT_PATHS
            if path.startswith("/country/")
            and path not in (
                "/country/economy/import_partners/item/trade_country",
                "/country/economy/export_partners/item/trade_country",
                "/country/geography/neighbors/neighbor",
                "/country/transnational_issues/refugees/country_of_origin",
            )
        ]
        refugee_seeded = False
        while produced < total:
            name, year = pairs[index % len(pairs)]
            suffix = index // len(pairs)
            doc_name = f"{name.lower().replace(' ', '-')}-{year}"
            if suffix:
                doc_name = f"{doc_name}-{suffix}"
            include_refugees = refugee_budget > 0 and rng.random() < (
                refugee_budget / max(1, total - produced)
            )
            if include_refugees:
                refugee_budget -= 1
            refugee_origin = None
            if include_refugees and not refugee_seeded:
                # Guarantee the country_of_origin context carries the
                # phrase at least once (one of the 27 US contexts).
                refugee_origin = "United States"
                refugee_seeded = True
            us_path = None
            if us_paths_pending and produced % 7 == 3:
                us_path = us_paths_pending.pop()
            yield doc_name, self._country_document(
                rng, name, year, include_refugees, us_path, refugee_origin
            )
            produced += 1
            index += 1

        # Non-country documents: seas and organizations.
        for i in range(self.other_count()):
            if i % 2 == 0:
                yield f"sea-{i}", self._sea_document(rng, i)
            else:
                yield f"organization-{i}", self._organization_document(rng, i)

    def build_collection(self):
        """A fully-populated :class:`DocumentCollection`."""
        collection = DocumentCollection(name="world-factbook")
        for name, root in self.documents():
            collection.add_document(root, name=name)
        return collection

    # -- scenario documents --------------------------------------------------------

    def _economy(self, country, year, gdp, imports, exports):
        economy = Element("economy")
        gdp_tag = "GDP" if year < 2005 else "GDP_ppp"
        economy.element(gdp_tag, text=gdp)
        import_partners = economy.element("import_partners")
        for partner, percentage in imports:
            item = import_partners.element("item")
            item.element("trade_country", text=partner)
            item.element("percentage", text=percentage)
        export_partners = economy.element("export_partners")
        for partner, percentage in exports:
            item = export_partners.element("item")
            item.element("trade_country", text=partner)
            item.element("percentage", text=percentage)
        return economy

    def _country_base(self, name, year, gdp, imports, exports):
        root = Element("country")
        root.append(name)
        root.element("year", text=str(year))
        root.append(self._economy(name, year, gdp, imports, exports))
        geography = root.element("geography")
        geography.element("location", text=_REGION_OF.get(name, "World"))
        people = root.element("people")
        people.element("population", text=str(1_000_000 + (sum(ord(c) for c in name) * 7919) % 100_000_000))
        return root

    def _us_document(self, year):
        root = self._country_base(
            "United States", year, US_GDP[year],
            US_IMPORT_PARTNERS[year], US_EXPORT_PARTNERS[year],
        )
        geography = root.find("geography")
        neighbors = geography.element("neighbors")
        neighbors.element("neighbor", text="Canada")
        neighbors.element("neighbor", text="Mexico")
        return root

    def _mexico_document(self, year):
        data = MEXICO_DATA[year]
        root = self._country_base(
            "Mexico", year, data["gdp"], data["imports"], data["exports"]
        )
        geography = root.find("geography")
        neighbors = geography.element("neighbors")
        neighbors.element("neighbor", text="United States")
        neighbors.element("neighbor", text="Guatemala")
        return root

    # -- generated country documents ---------------------------------------------------

    def _country_document(self, rng, name, year, include_refugees, us_path,
                          refugee_origin=None):
        gdp = f"{rng.uniform(0.5, 999):.1f}B"
        partners = rng.sample(COUNTRY_NAMES[:60], 4)
        imports = tuple(
            (partner, f"{rng.uniform(1, 40):.1f}%") for partner in partners[:2]
        )
        exports = tuple(
            (partner, f"{rng.uniform(1, 40):.1f}%") for partner in partners[2:]
        )
        root = self._country_base(name, year, gdp, imports, exports)

        if include_refugees:
            issues = root.element("transnational_issues")
            refugees = issues.element("refugees")
            refugees.element(
                "country_of_origin",
                text=refugee_origin or rng.choice(COUNTRY_NAMES[:40]),
            )

        # Optional sections: the dataguide-diversity machinery.  The
        # Zipf-like bias concentrates documents on popular topic groups,
        # which is what lets greedy merging find partners (and what
        # produces the long tail of rare paths the paper observes).
        section_count = rng.randint(self.sections_low, self.sections_high)
        universe = self._optional_universe
        chosen = []
        seen = set()
        while len(chosen) < section_count:
            # Inverse-CDF sample of a Zipf-ish rank distribution.
            rank = int(len(universe) * (rng.random() ** self.popularity_bias))
            if rank in seen:
                continue
            seen.add(rank)
            chosen.append(universe[rank])
        leaf_paths = []
        for _section, group in chosen:
            for leaf_path in group:
                if rng.random() < self.leaf_probability:
                    leaf_paths.append(leaf_path)
        self._graft_leaf_paths(root, leaf_paths, rng)

        if us_path is not None and us_path.startswith("/country/"):
            self._graft_leaf_paths(root, [us_path], rng,
                                   fixed_text="United States")
        return root

    def _graft_leaf_paths(self, root, leaf_paths, rng, fixed_text=None):
        """Attach leaf paths (under /country) onto an existing root."""
        by_prefix = {"/country": root}
        for path in sorted(leaf_paths):
            steps = path.split("/")[2:]
            node = root
            prefix = "/country"
            for step in steps:
                prefix = f"{prefix}/{step}"
                existing = by_prefix.get(prefix)
                if existing is None:
                    existing = node.find(step)
                if existing is None:
                    existing = node.element(step)
                by_prefix[prefix] = existing
                node = existing
            if fixed_text is not None:
                node.append(fixed_text)
            elif rng.random() < 0.5:
                node.append(common.random_words(rng, 2))
            else:
                node.append(f"{rng.uniform(0, 1000):.1f}")

    # -- non-country documents -------------------------------------------------------------

    def _sea_document(self, rng, index):
        root = Element("sea")
        names = ("Pacific Ocean", "China sea", "Baltic Sea", "North Sea",
                 "Caribbean Sea", "Mediterranean Sea", "Black Sea",
                 "Red Sea", "Coral Sea", "Bering Sea", "Arabian Sea",
                 "Caspian Sea")
        root.element("name", text=names[index % len(names)])
        root.element("depth", text=f"{rng.randint(200, 11000)}")
        bordering = root.element("bordering")
        bordering.element("country_name", text="United States"
                          if index == 0 else rng.choice(COUNTRY_NAMES[:30]))
        bordering.element("country_name", text=rng.choice(COUNTRY_NAMES[:30]))
        return root

    def _organization_document(self, rng, index):
        root = Element("organization")
        names = ("United Nations", "World Trade Organization", "NATO",
                 "European Union", "African Union", "OPEC", "ASEAN",
                 "Mercosur", "Arab League", "Commonwealth", "G7")
        root.element("name", text=names[index % len(names)])
        members = root.element("members")
        members.element("member", text="United States" if index == 1
                        else rng.choice(COUNTRY_NAMES[:30]))
        members.element("member", text=rng.choice(COUNTRY_NAMES[:30]))
        headquarters = root.element("headquarters")
        headquarters.element(
            "host_country",
            text="United States" if index == 3 else rng.choice(
                COUNTRY_NAMES[:30]
            ),
        )
        return root

    # -- cube registry seeds (Figure 3(b)) ---------------------------------------------------

    @staticmethod
    def register_standard_definitions(registry):
        """Install the Figure 3(b) facts and dimensions into ``registry``."""
        country_key = RelativeKey(["/country", "/country/year"])
        registry.add_dimension("country", [("/country", country_key)])
        registry.add_dimension("year", [("/country/year", country_key)])
        registry.add_dimension(
            "import-country",
            [(
                "/country/economy/import_partners/item/trade_country",
                RelativeKey(["/country", "/country/year", "."]),
            )],
        )
        registry.add_fact(
            "import-trade-percentage",
            [(
                "/country/economy/import_partners/item/percentage",
                RelativeKey(["/country", "/country/year", "../trade_country"]),
            )],
        )
        registry.add_fact(
            "GDP",
            [
                ("/country/economy/GDP", country_key),
                ("/country/economy/GDP_ppp", country_key),
            ],
        )
        return registry

    @staticmethod
    def value_link_specs():
        """Value-based PK/FK links (Definition 2, item 4): trade-partner
        names point back to the country documents, as in Figure 1."""
        return [
            ValueLinkSpec(
                primary_path="/country",
                foreign_path="/country/economy/import_partners/item/trade_country",
                label="trade partner",
            ),
            ValueLinkSpec(
                primary_path="/country",
                foreign_path="/country/geography/neighbors/neighbor",
                label="bordering",
            ),
            ValueLinkSpec(
                primary_path="/country",
                foreign_path="/sea/bordering/country_name",
                label="bordering",
            ),
        ]


_REGION_OF = {
    "United States": "America",
    "Canada": "America",
    "Mexico": "America",
    "China": "Asia",
    "Philippines": "Asia",
    "Germany": "Europe",
}
