"""Shared helpers for the dataset generators."""

import random

from repro.xmlio.dom import Element

WORDS = (
    "alpine arid basin canal coastal delta dune estuary fjord glacier "
    "grassland gulf harbor highland island isthmus jungle lagoon lake "
    "lowland marsh mesa oasis peninsula plain plateau prairie reef ridge "
    "river savanna sea steppe strait summit swamp taiga terrace tundra "
    "valley volcano watershed wetland"
).split()


class DeterministicRandom(random.Random):
    """A seeded RNG; exists to make the determinism contract explicit."""


def make_rng(seed):
    return DeterministicRandom(seed)


def random_words(rng, count):
    """Space-joined pseudo-content words."""
    return " ".join(rng.choice(WORDS) for _ in range(count))


def build_tree_from_paths(root_tag, leaf_paths, leaf_value):
    """Construct an :class:`Element` tree realizing a set of leaf paths.

    ``leaf_paths`` are full paths starting with ``/root_tag``;
    ``leaf_value(path)`` supplies the text of each leaf.  Interior
    nodes are created once per distinct prefix, so the resulting
    document's node-path set is exactly the prefix closure of
    ``leaf_paths``.
    """
    root = Element(root_tag)
    by_prefix = {f"/{root_tag}": root}
    for path in sorted(leaf_paths):
        steps = path.split("/")[1:]
        if steps[0] != root_tag:
            raise ValueError(
                f"leaf path {path!r} does not start at /{root_tag}"
            )
        prefix = f"/{root_tag}"
        node = root
        for step in steps[1:]:
            prefix = f"{prefix}/{step}"
            existing = by_prefix.get(prefix)
            if existing is None:
                existing = node.element(step)
                by_prefix[prefix] = existing
            node = existing
        value = leaf_value(path)
        if value:
            node.append(str(value))
    return root


def prefix_closure(paths):
    """All prefixes of the given slash paths (including themselves)."""
    closed = set()
    for path in paths:
        steps = path.split("/")[1:]
        prefix = ""
        for step in steps:
            prefix = f"{prefix}/{step}"
            closed.add(prefix)
    return closed
