"""Recursive-descent parser for search query text.

Grammar (case-insensitive operators)::

    expr    := or_expr
    or_expr := and_expr ( OR and_expr )*
    and_expr:= unary ( [AND] unary )*      # juxtaposition is AND
    unary   := NOT unary | atom
    atom    := '(' expr ')' | '"' words '"' | word | '*'

Keywords are normalized through the analyzer at parse time so that the
AST carries index-ready terms; a quoted phrase whose words normalize to
several tokens each is flattened into one token sequence.
"""

from repro.query.ast import (
    And,
    Keyword,
    MatchAll,
    Not,
    Or,
    Phrase,
    QuerySyntaxError,
)
from repro.text import Analyzer

_DEFAULT_ANALYZER = Analyzer()


def _lex(text):
    """Split query text into operator / phrase / word tokens."""
    tokens = []
    i = 0
    length = len(text)
    while i < length:
        ch = text[i]
        if ch.isspace():
            i += 1
            continue
        if ch in "()":
            tokens.append((ch, ch))
            i += 1
            continue
        if ch == '"':
            end = text.find('"', i + 1)
            if end == -1:
                raise QuerySyntaxError(f"unterminated phrase in {text!r}")
            tokens.append(("phrase", text[i + 1 : end]))
            i = end + 1
            continue
        start = i
        while i < length and not text[i].isspace() and text[i] not in '()"':
            i += 1
        word = text[start:i]
        upper = word.upper()
        if upper in ("AND", "OR", "NOT"):
            tokens.append((upper, word))
        elif word == "*":
            tokens.append(("star", word))
        else:
            tokens.append(("word", word))
    return tokens


class _Parser:
    def __init__(self, tokens, analyzer):
        self.tokens = tokens
        self.pos = 0
        self.analyzer = analyzer

    def _peek(self):
        if self.pos < len(self.tokens):
            return self.tokens[self.pos]
        return (None, None)

    def _advance(self):
        token = self._peek()
        self.pos += 1
        return token

    def parse(self):
        expr = self._or_expr()
        if self.pos != len(self.tokens):
            kind, value = self._peek()
            raise QuerySyntaxError(f"unexpected {value!r} in search query")
        return expr

    def _or_expr(self):
        operands = [self._and_expr()]
        while self._peek()[0] == "OR":
            self._advance()
            operands.append(self._and_expr())
        if len(operands) == 1:
            return operands[0]
        return Or(operands)

    def _and_expr(self):
        operands = [self._unary()]
        while True:
            kind, _value = self._peek()
            if kind == "AND":
                self._advance()
                operands.append(self._unary())
            elif kind in ("word", "phrase", "NOT", "(", "star"):
                operands.append(self._unary())
            else:
                break
        if len(operands) == 1:
            return operands[0]
        return And(operands)

    def _unary(self):
        kind, _value = self._peek()
        if kind == "NOT":
            self._advance()
            return Not(self._unary())
        return self._atom()

    def _atom(self):
        kind, value = self._advance()
        if kind == "(":
            expr = self._or_expr()
            closing, _ = self._advance()
            if closing != ")":
                raise QuerySyntaxError("missing closing parenthesis")
            return expr
        if kind == "phrase":
            words = self.analyzer.terms(value)
            if not words:
                raise QuerySyntaxError(f"phrase {value!r} has no terms")
            if len(words) == 1:
                return Keyword(words[0])
            return Phrase(words)
        if kind == "word":
            words = self.analyzer.terms(value)
            if not words:
                raise QuerySyntaxError(
                    f"keyword {value!r} normalizes to nothing"
                )
            if len(words) == 1:
                return Keyword(words[0])
            # A "word" like GDP_ppp may analyze into several tokens with a
            # splitting analyzer; require them adjacent, i.e. a phrase.
            return Phrase(words)
        if kind == "star":
            return MatchAll()
        raise QuerySyntaxError(f"unexpected token {value!r} in search query")


def parse_query_text(text, analyzer=None):
    """Parse search query text into a :class:`SearchExpr`.

    ``"*"`` and empty/whitespace text parse to :class:`MatchAll` -- a
    term such as ``(percentage, *)`` constrains context only.
    """
    analyzer = analyzer or _DEFAULT_ANALYZER
    tokens = _lex(text or "")
    if not tokens:
        return MatchAll()
    return _Parser(tokens, analyzer).parse()
