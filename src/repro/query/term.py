"""Query terms, context specifications, and whole queries.

Definition 3: a query term is ``(context, search_query)`` where context
is empty, a root-to-leaf path, a keyword (tag-name) query allowing
wildcards, or a disjunction of those.
"""

import fnmatch

from repro.query.ast import MatchAll
from repro.query.parser import parse_query_text


class Context:
    """Base class for context specifications."""

    def matches(self, node):
        """Definition 3 condition 2: does ``node`` satisfy this context?"""
        raise NotImplementedError

    def matches_path(self, path):
        """Does a root-to-leaf ``path`` string satisfy this context?"""
        raise NotImplementedError


class EmptyContext(Context):
    """``qt.context = empty`` -- matches every node."""

    def matches(self, node):
        return True

    def matches_path(self, path):
        return True

    def __eq__(self, other):
        return isinstance(other, EmptyContext)

    def __hash__(self):
        return hash(EmptyContext)

    def __repr__(self):
        return "EmptyContext()"


class TagContext(Context):
    """``qt.context = node-name(n)``; the pattern may contain ``*``."""

    def __init__(self, pattern):
        self.pattern = pattern
        self._literal = "*" not in pattern and "?" not in pattern

    def matches(self, node):
        return self._match_name(node.tag)

    def matches_path(self, path):
        return self._match_name(path.rsplit("/", 1)[-1])

    def _match_name(self, name):
        if self._literal:
            return name == self.pattern
        return fnmatch.fnmatchcase(name, self.pattern)

    def __eq__(self, other):
        return isinstance(other, TagContext) and self.pattern == other.pattern

    def __hash__(self):
        return hash((TagContext, self.pattern))

    def __repr__(self):
        return f"TagContext({self.pattern!r})"


class PathContext(Context):
    """``qt.context = context(n)`` -- a full root-to-leaf path."""

    def __init__(self, path):
        if not path.startswith("/"):
            raise ValueError(f"a path context must start with '/': {path!r}")
        self.path = path

    def matches(self, node):
        return node.path == self.path

    def matches_path(self, path):
        return path == self.path

    def __eq__(self, other):
        return isinstance(other, PathContext) and self.path == other.path

    def __hash__(self):
        return hash((PathContext, self.path))

    def __repr__(self):
        return f"PathContext({self.path!r})"


class ContextDisjunction(Context):
    """A disjunction of path and tag contexts (Definition 3, case iii)."""

    def __init__(self, alternatives):
        self.alternatives = tuple(alternatives)
        if not self.alternatives:
            raise ValueError("a context disjunction needs alternatives")

    def matches(self, node):
        return any(alt.matches(node) for alt in self.alternatives)

    def matches_path(self, path):
        return any(alt.matches_path(path) for alt in self.alternatives)

    def __eq__(self, other):
        return (
            isinstance(other, ContextDisjunction)
            and self.alternatives == other.alternatives
        )

    def __hash__(self):
        return hash((ContextDisjunction, self.alternatives))

    def __repr__(self):
        return f"ContextDisjunction({list(self.alternatives)!r})"


def parse_context(spec):
    """Parse a context specification string.

    ``"*"`` or ``""`` -> empty; ``"/a/b"`` -> path; ``"tag*"`` -> tag
    pattern; ``"a|/b/c"`` -> disjunction.  An already-built
    :class:`Context` passes through unchanged.
    """
    if isinstance(spec, Context):
        return spec
    if spec is None:
        return EmptyContext()
    spec = spec.strip()
    if spec in ("", "*"):
        return EmptyContext()
    if "|" in spec:
        return ContextDisjunction(
            [parse_context(piece) for piece in spec.split("|") if piece.strip()]
        )
    if spec.startswith("/"):
        return PathContext(spec)
    return TagContext(spec)


class QueryTerm:
    """One ``(context, search_query)`` pair."""

    def __init__(self, context, search, label=None):
        self.context = parse_context(context)
        if isinstance(search, str) or search is None:
            self.search = parse_query_text(search)
        else:
            self.search = search
        self.label = label

    @property
    def is_match_all(self):
        return isinstance(self.search, MatchAll)

    def cache_key(self):
        """Canonical hashable form of this term, for result-cache keys.

        Context and search-AST reprs are complete and deterministic, so
        two spellings that parse to the same normalized term (e.g. the
        ``"*"`` and ``""`` contexts, or differently spaced keyword
        bags) share one key.
        """
        return (repr(self.context), repr(self.search))

    def __repr__(self):
        return f"QueryTerm({self.context!r}, {self.search!r})"


class Query:
    """A SEDA query: an ordered set of query terms.

    Order matters only for presentation -- result tuples list node
    references in term order, as in Figure 3.
    """

    def __init__(self, terms):
        self.terms = [
            term if isinstance(term, QueryTerm) else QueryTerm(*term)
            for term in terms
        ]
        if not self.terms:
            raise ValueError("a query needs at least one term")

    @classmethod
    def parse(cls, pairs):
        """Build a query from ``(context, search)`` string pairs."""
        return cls([QueryTerm(context, search) for context, search in pairs])

    def cache_key(self):
        """Canonical hashable form of the whole query (term order kept:
        it determines result-tuple column order)."""
        return tuple(term.cache_key() for term in self.terms)

    def __len__(self):
        return len(self.terms)

    def __iter__(self):
        return iter(self.terms)

    def __repr__(self):
        return f"Query({self.terms!r})"
