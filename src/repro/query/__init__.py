"""SEDA query language (Section 3, Definitions 3-4).

A query is a set of *query terms*; each term is a pair
``(context, search_query)``:

* ``search_query`` is a full-text expression -- keywords, ``"quoted
  phrases"``, ``AND`` / ``OR`` / ``NOT``, parentheses, or ``*`` for
  "any content".
* ``context`` is empty (``*``), a root-to-leaf path (``/country/year``),
  a tag-name pattern with wildcards (``trade*``), or a ``|``-separated
  disjunction of those.

:class:`TermMatcher` evaluates terms against the indexes and implements
the Definition 3 satisfaction test.
"""

from repro.query.ast import (
    And,
    Keyword,
    MatchAll,
    Not,
    Or,
    Phrase,
    QuerySyntaxError,
)
from repro.query.matcher import TermMatcher
from repro.query.parser import parse_query_text
from repro.query.term import (
    Context,
    ContextDisjunction,
    EmptyContext,
    PathContext,
    Query,
    QueryTerm,
    TagContext,
    parse_context,
)

__all__ = [
    "And",
    "Context",
    "ContextDisjunction",
    "EmptyContext",
    "Keyword",
    "MatchAll",
    "Not",
    "Or",
    "PathContext",
    "Phrase",
    "Query",
    "QuerySyntaxError",
    "QueryTerm",
    "TagContext",
    "TermMatcher",
    "parse_context",
    "parse_query_text",
]
