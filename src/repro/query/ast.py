"""Full-text search expression AST.

The search query of a query term "can be a simple bag of keywords, a
phrase query or a boolean combination of those" (Section 3).  The AST
mirrors that: :class:`Keyword`, :class:`Phrase`, :class:`And`,
:class:`Or`, :class:`Not`, plus :class:`MatchAll` for the ``*`` query
used by terms like ``(trade_country, *)`` in Query 1.
"""


class QuerySyntaxError(ValueError):
    """Malformed search query text."""


class SearchExpr:
    """Base class for search expressions."""

    def terms(self):
        """All keyword terms mentioned (for ranking and TA streams)."""
        raise NotImplementedError


class MatchAll(SearchExpr):
    """Matches every node regardless of content (the ``*`` query)."""

    def terms(self):
        return []

    def __eq__(self, other):
        return isinstance(other, MatchAll)

    def __hash__(self):
        return hash(MatchAll)

    def __repr__(self):
        return "MatchAll()"


class Keyword(SearchExpr):
    """A single (analyzer-normalized) keyword."""

    def __init__(self, term):
        self.term = term

    def terms(self):
        return [self.term]

    def __eq__(self, other):
        return isinstance(other, Keyword) and self.term == other.term

    def __hash__(self):
        return hash((Keyword, self.term))

    def __repr__(self):
        return f"Keyword({self.term!r})"


class Phrase(SearchExpr):
    """An exact phrase of consecutive terms."""

    def __init__(self, words):
        self.words = tuple(words)
        if not self.words:
            raise QuerySyntaxError("empty phrase")

    def terms(self):
        return list(self.words)

    def __eq__(self, other):
        return isinstance(other, Phrase) and self.words == other.words

    def __hash__(self):
        return hash((Phrase, self.words))

    def __repr__(self):
        return f"Phrase({list(self.words)!r})"


class _Boolean(SearchExpr):
    def __init__(self, children):
        self.children = tuple(children)
        if len(self.children) < 2:
            raise QuerySyntaxError(
                f"{type(self).__name__} needs at least two operands"
            )

    def terms(self):
        collected = []
        for child in self.children:
            collected.extend(child.terms())
        return collected

    def __eq__(self, other):
        return type(self) is type(other) and self.children == other.children

    def __hash__(self):
        return hash((type(self), self.children))

    def __repr__(self):
        return f"{type(self).__name__}({list(self.children)!r})"


class And(_Boolean):
    """Conjunction; a bag of keywords parses to an implicit And."""


class Or(_Boolean):
    """Disjunction."""


class Not(SearchExpr):
    """Negation; only meaningful inside a conjunction."""

    def __init__(self, child):
        self.child = child

    def terms(self):
        # Negated terms do not contribute candidate streams.
        return []

    def __eq__(self, other):
        return isinstance(other, Not) and self.child == other.child

    def __hash__(self):
        return hash((Not, self.child))

    def __repr__(self):
        return f"Not({self.child!r})"
