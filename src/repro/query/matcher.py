"""Term evaluation against the indexes (Definition 3 semantics).

Two granularities:

* :meth:`TermMatcher.candidates` -- node ids satisfying a term, in
  Dewey order.  This is the input stream for the top-k search unit and
  the twig processor.  Content matching here is at the *directly
  containing node* (the node whose own text carries the keywords),
  which is how the full-text index is built and how the paper's
  examples behave ("United States" matches ``country`` and
  ``trade_country`` leaf nodes).
* :meth:`TermMatcher.satisfies` -- the literal Definition 3 check for a
  given node, using ``content(n)`` = all descendant text.  Used by
  tests and by callers that need ancestor matches.

:meth:`TermMatcher.term_paths` computes a term's *context bucket*: the
distinct root-to-leaf paths the term matches anywhere in the collection
(Section 5), evaluated on the path index.
"""

from repro.query.ast import (
    And,
    Keyword,
    MatchAll,
    Not,
    Or,
    Phrase,
    QuerySyntaxError,
)
from repro.query.term import (
    ContextDisjunction,
    EmptyContext,
    PathContext,
    TagContext,
)


class TermMatcher:
    """Evaluates query terms over a collection and its indexes."""

    def __init__(self, collection, inverted, path_index, node_store):
        self.collection = collection
        self.inverted = inverted
        self.path_index = path_index
        self.node_store = node_store

    # -- candidate enumeration ----------------------------------------------

    def candidates(self, term):
        """Node ids satisfying ``term``, sorted in global Dewey order."""
        if term.is_match_all:
            node_ids = self._context_nodes(term.context)
        else:
            matched = self._eval_nodes(term.search)
            node_ids = [
                node_id
                for node_id in matched
                if term.context.matches(self.collection.node(node_id))
            ]
        # Global node ids are assigned in document order, so sorting by
        # id yields Dewey order.
        return sorted(set(node_ids))

    def _context_nodes(self, context):
        """All node ids whose context matches (for match-all terms)."""
        if isinstance(context, EmptyContext):
            return [node.node_id for node in self.collection.iter_nodes()]
        if isinstance(context, PathContext):
            return self.node_store.by_path(context.path)
        if isinstance(context, TagContext):
            node_ids = []
            for tag in self.node_store.tags():
                if context._match_name(tag):
                    node_ids.extend(self.node_store.by_tag(tag))
            return node_ids
        if isinstance(context, ContextDisjunction):
            node_ids = []
            for alternative in context.alternatives:
                node_ids.extend(self._context_nodes(alternative))
            return node_ids
        raise TypeError(f"unknown context type {type(context).__name__}")

    def _eval_nodes(self, expr):
        """Evaluate a search expression to a set of node ids."""
        if isinstance(expr, MatchAll):
            return {node.node_id for node in self.collection.iter_nodes()}
        if isinstance(expr, Keyword):
            return set(self.inverted.nodes_with_term(expr.term))
        if isinstance(expr, Phrase):
            return set(self.inverted.nodes_with_phrase(list(expr.words)))
        if isinstance(expr, Or):
            result = set()
            for child in expr.children:
                if isinstance(child, Not):
                    raise QuerySyntaxError(
                        "NOT is only supported inside a conjunction"
                    )
                result |= self._eval_nodes(child)
            return result
        if isinstance(expr, And):
            positives = [c for c in expr.children if not isinstance(c, Not)]
            negatives = [c for c in expr.children if isinstance(c, Not)]
            if not positives:
                raise QuerySyntaxError(
                    "a conjunction needs at least one positive operand"
                )
            result = self._eval_nodes(positives[0])
            for child in positives[1:]:
                result &= self._eval_nodes(child)
                if not result:
                    return result
            for child in negatives:
                result -= self._eval_nodes(child.child)
            return result
        if isinstance(expr, Not):
            raise QuerySyntaxError("NOT is only supported inside a conjunction")
        raise TypeError(f"unknown search expression {type(expr).__name__}")

    # -- Definition 3 literal check ---------------------------------------------

    def satisfies(self, node_id, term):
        """Definition 3: ``content(n)`` satisfies the search query and the
        node's name or context matches the term's context."""
        node = self.collection.node(node_id)
        if not term.context.matches(node):
            return False
        if term.is_match_all:
            return True
        content_terms = self.inverted.analyzer.terms(
            self.collection.content(node_id)
        )
        return self._eval_content(term.search, content_terms)

    def _eval_content(self, expr, content_terms):
        if isinstance(expr, MatchAll):
            return True
        if isinstance(expr, Keyword):
            return expr.term in content_terms
        if isinstance(expr, Phrase):
            words = list(expr.words)
            span = len(words)
            for start in range(len(content_terms) - span + 1):
                if content_terms[start : start + span] == words:
                    return True
            return False
        if isinstance(expr, And):
            positives = [c for c in expr.children if not isinstance(c, Not)]
            negatives = [c for c in expr.children if isinstance(c, Not)]
            return all(
                self._eval_content(child, content_terms) for child in positives
            ) and not any(
                self._eval_content(child.child, content_terms)
                for child in negatives
            )
        if isinstance(expr, Or):
            return any(
                self._eval_content(child, content_terms)
                for child in expr.children
            )
        if isinstance(expr, Not):
            raise QuerySyntaxError("NOT is only supported inside a conjunction")
        raise TypeError(f"unknown search expression {type(expr).__name__}")

    # -- context buckets (Section 5) ------------------------------------------------

    def term_paths(self, term):
        """Distinct paths the term matches in the whole collection.

        Section 5 describes three probe modes against the path index:
        term only, tag + term, and full path + term; the context filter
        below subsumes the latter two.
        """
        if term.is_match_all:
            paths = self.path_index.all_paths()
        else:
            paths = self._eval_paths(term.search)
        return {path for path in paths if term.context.matches_path(path)}

    def _eval_paths(self, expr):
        if isinstance(expr, MatchAll):
            return self.path_index.all_paths()
        if isinstance(expr, Keyword):
            return self.path_index.paths_for_term(expr.term)
        if isinstance(expr, Phrase):
            # Exact phrase paths come from the node-level index: the path
            # index alone cannot see adjacency (the paper verifies phrase
            # hits against the stored documents; we use node postings).
            node_ids = self.inverted.nodes_with_phrase(list(expr.words))
            return {self.collection.node(node_id).path for node_id in node_ids}
        if isinstance(expr, Or):
            result = set()
            for child in expr.children:
                if isinstance(child, Not):
                    raise QuerySyntaxError(
                        "NOT is only supported inside a conjunction"
                    )
                result |= self._eval_paths(child)
            return result
        if isinstance(expr, And):
            positives = [c for c in expr.children if not isinstance(c, Not)]
            negatives = [c for c in expr.children if isinstance(c, Not)]
            if not positives:
                raise QuerySyntaxError(
                    "a conjunction needs at least one positive operand"
                )
            result = self._eval_paths(positives[0])
            for child in positives[1:]:
                result &= self._eval_paths(child)
            for child in negatives:
                result -= self._eval_paths(child.child)
            return result
        if isinstance(expr, Not):
            raise QuerySyntaxError("NOT is only supported inside a conjunction")
        raise TypeError(f"unknown search expression {type(expr).__name__}")
