"""SEDA: Search Driven Analysis of Heterogeneous XML Data.

A from-scratch reproduction of Balmin et al., CIDR 2009.  The package
implements the complete system: XML parsing and storage, full-text and
path indexes, TA-based top-k search with compactness ranking, context
and connection summaries over merged dataguides, holistic twig joins
for complete results, star-schema construction with relative XML keys,
and a small OLAP engine.

Entry point::

    from repro import Seda
    seda = Seda.from_documents([...])
    session = seda.search([("*", '"United States"'),
                           ("trade_country", "*"),
                           ("percentage", "*")])
"""

from repro.query.term import Query, QueryTerm
from repro.service.query_service import QueryService
from repro.shard import ShardedQueryService, ShardedSeda
from repro.system import Seda, SedaSession

__version__ = "1.1.0"

__all__ = [
    "Query", "QueryService", "QueryTerm", "Seda", "SedaSession",
    "ShardedQueryService", "ShardedSeda", "__version__",
]
