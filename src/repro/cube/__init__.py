"""Data cube construction (Section 7).

SEDA maintains a registry of known facts ``F`` and dimensions ``D``,
each a nested relation ``<name, ContextList<context, key>>`` with
*relative XML keys* [5].  Cube construction runs in three steps:

1. **Matching** -- each path column of the full query result is matched
   against the context lists (subset semantics), yielding the facts and
   dimensions present in the result.
2. **Augmentation** -- users adjust the matched sets; the result is
   extended with any missing key columns (e.g. the ``/country/year``
   column of Figure 3), which are themselves matched against known
   dimensions.
3. **Extraction** -- fact and dimension tables of the star schema are
   generated and populated; fact tables with identical keys are merged.
"""

from repro.cube.augment import AugmentedResult, Augmenter
from repro.cube.extract import TableExtractor, parse_measure
from repro.cube.keys import KeyResolutionError, RelativeKey
from repro.cube.matching import ColumnMatch, MatchReport, ResultMatcher
from repro.cube.registry import CubeDefinition, Registry
from repro.cube.star import DimensionTable, FactTable, StarSchema

__all__ = [
    "AugmentedResult",
    "Augmenter",
    "ColumnMatch",
    "CubeDefinition",
    "DimensionTable",
    "FactTable",
    "KeyResolutionError",
    "MatchReport",
    "Registry",
    "RelativeKey",
    "ResultMatcher",
    "StarSchema",
    "TableExtractor",
    "parse_measure",
]
