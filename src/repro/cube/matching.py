"""Step 1 -- matching query results to facts and dimensions.

"We say that a pair (cni, cpi) matches a fact f iff pi_cp(R) is a
subset of pi_context(f.ContextList)."  Three outcomes per column:

* **full match** -- every path in the column is a known context;
* **partial match** -- some paths intersect a definition's contexts
  ("SEDA issues a warning message to the user");
* **no match** -- the user may define a new fact or dimension from the
  column, or the column is ignored during cube creation ("those values
  may have been used only to restrict the data set").
"""

from repro.cube.registry import DIMENSION, FACT


class ColumnMatch:
    """Match outcome for one result column (one query term)."""

    __slots__ = ("index", "paths", "facts", "dimensions", "partial")

    def __init__(self, index, paths, facts, dimensions, partial):
        self.index = index
        self.paths = set(paths)
        self.facts = facts
        self.dimensions = dimensions
        self.partial = partial

    @property
    def matched(self):
        return bool(self.facts or self.dimensions)

    @property
    def has_warning(self):
        """Partial intersections trigger the Section 7 warning."""
        return bool(self.partial) and not self.matched

    def best(self):
        """The preferred definition: first dimension, then fact."""
        if self.dimensions:
            return self.dimensions[0]
        if self.facts:
            return self.facts[0]
        return None

    def __repr__(self):
        return (
            f"ColumnMatch(col={self.index}, facts={[f.name for f in self.facts]}, "
            f"dims={[d.name for d in self.dimensions]}, "
            f"partial={[p.name for p in self.partial]})"
        )


class MatchReport:
    """All column matches plus the derived Fq and Dq sets."""

    def __init__(self, columns):
        self.columns = columns

    @property
    def facts(self):
        """Fq: facts present in the result set, first-match per column."""
        seen = {}
        for column in self.columns:
            for fact in column.facts:
                seen.setdefault(fact.name, fact)
        return list(seen.values())

    @property
    def dimensions(self):
        """Dq: dimensions present in the result set."""
        seen = {}
        for column in self.columns:
            for dimension in column.dimensions:
                seen.setdefault(dimension.name, dimension)
        return list(seen.values())

    def warnings(self):
        """Columns with partial-intersection warnings."""
        messages = []
        for column in self.columns:
            for definition in column.partial:
                messages.append(
                    f"column {column.index + 1}: paths {sorted(column.paths)} "
                    f"intersect but do not all match {definition.kind} "
                    f"{definition.name!r}; verify the chosen context list"
                )
        return messages

    def unmatched_columns(self):
        return [column for column in self.columns if not column.matched]

    def column(self, index):
        return self.columns[index]

    def __iter__(self):
        return iter(self.columns)


class ResultMatcher:
    """Runs Step 1 over a :class:`~repro.twig.complete.ResultTable`."""

    def __init__(self, registry):
        self.registry = registry

    def match(self, result_table):
        """The :class:`MatchReport` for a complete result."""
        columns = []
        for index in range(len(result_table.query.terms)):
            paths = result_table.column_paths(index)
            facts = []
            dimensions = []
            partial = []
            for definition in self.registry.facts + self.registry.dimensions:
                if definition.matches_paths(paths):
                    if definition.kind == FACT:
                        facts.append(definition)
                    else:
                        dimensions.append(definition)
                elif definition.overlaps_paths(paths):
                    partial.append(definition)
            columns.append(
                ColumnMatch(index, paths, facts, dimensions, partial)
            )
        return MatchReport(columns)

    def define_new(self, name, kind, result_table, column_index, key,
                   collection, node_store, verify=True):
        """Create a fact/dimension from an unmatched column (Section 7).

        The key is verified by resolving it for every node in the
        column and checking uniqueness, unless ``verify`` is disabled.
        Returns the new :class:`CubeDefinition`.
        """
        paths = sorted(result_table.column_paths(column_index))
        if not paths:
            raise ValueError(
                f"column {column_index} is empty; nothing to define"
            )
        context_list = [(path, key) for path in paths]
        if verify:
            from repro.cube.keys import RelativeKey

            relative_key = key if isinstance(key, RelativeKey) else RelativeKey(key)
            node_ids = [row[column_index] for row in result_table.rows]
            unique, duplicates = relative_key.verify_uniqueness(
                collection, node_store, node_ids
            )
            if not unique:
                raise ValueError(
                    f"key {list(relative_key)} is not unique for column "
                    f"{column_index + 1}: duplicate key values "
                    f"{duplicates[:3]}"
                )
        if kind == FACT:
            return self.registry.add_fact(name, context_list)
        if kind == DIMENSION:
            return self.registry.add_dimension(name, context_list)
        raise ValueError(f"kind must be 'fact' or 'dimension', got {kind!r}")
