"""Automatic discovery of facts, dimensions, and keys (Section 8).

The paper leaves two things manual and names them as future work:

* "SEDA could also take advantage of automated discovery of facts and
  dimensions" (Section 7) / "we plan to investigate automatic
  discovery of facts and dimensions from the data" (Section 8);
* "Currently, the keys are specified manually, but in the future we
  plan to adopt the techniques of GORDIAN [17] to discover them
  automatically" (Section 7).

This module implements both:

* :class:`FactDimensionDiscoverer` profiles every root-to-leaf path and
  proposes *fact candidates* (numeric-valued paths: measures) and
  *dimension candidates* (low-cardinality categorical paths), each with
  an automatically discovered relative key.
* :func:`discover_key` searches the space of key components (absolute
  paths of the same document plus near-sibling relative paths), in
  GORDIAN's spirit of exploring composite keys from a candidate
  attribute set, verifying uniqueness against the actual data and
  returning a minimal verified key.
"""

import itertools

from repro.cube.extract import parse_measure
from repro.cube.keys import KeyResolutionError, RelativeKey


class PathProfile:
    """Value statistics for one root-to-leaf path."""

    __slots__ = ("path", "count", "distinct", "numeric", "document_ids",
                 "samples")

    def __init__(self, path):
        self.path = path
        self.count = 0
        self.distinct = set()
        self.numeric = 0
        self.document_ids = set()
        self.samples = []

    @property
    def cardinality_ratio(self):
        """Distinct values / occurrences: low for dimensions."""
        if not self.count:
            return 0.0
        return len(self.distinct) / self.count

    @property
    def numeric_ratio(self):
        if not self.count:
            return 0.0
        return self.numeric / self.count

    def __repr__(self):
        return (
            f"PathProfile({self.path!r}, n={self.count}, "
            f"distinct={len(self.distinct)}, numeric={self.numeric_ratio:.2f})"
        )


class Candidate:
    """A discovered fact or dimension candidate."""

    __slots__ = ("kind", "path", "profile", "key", "score")

    def __init__(self, kind, path, profile, key, score):
        self.kind = kind
        self.path = path
        self.profile = profile
        self.key = key
        self.score = score

    def suggested_name(self):
        """A human-friendly default name from the leaf steps."""
        steps = [step for step in self.path.split("/") if step]
        if len(steps) >= 2:
            return f"{steps[-2]}-{steps[-1]}".replace("@", "")
        return steps[-1].replace("@", "")

    def __repr__(self):
        return (
            f"Candidate({self.kind}, {self.path!r}, score={self.score:.2f}, "
            f"key={list(self.key) if self.key else None})"
        )


def _sibling_components(collection, node_store, path, limit=6):
    """Relative components available next to nodes on ``path``.

    Candidate discriminators are the tags of sibling elements -- e.g.
    ``../trade_country`` for the percentage path -- collected from a
    sample of instances.
    """
    components = []
    seen = set()
    for node_id in node_store.by_path(path)[:50]:
        node = collection.node(node_id)
        if node.parent_id is None:
            continue
        parent = collection.node(node.parent_id)
        for child_id in parent.child_ids:
            child = collection.node(child_id)
            if child.node_id == node_id or child.tag.startswith("@"):
                continue
            component = f"../{child.tag}"
            if component not in seen:
                seen.add(component)
                components.append(component)
            if len(components) >= limit:
                return components
    return components


def _document_level_components(collection, node_store, path, limit=6):
    """Absolute key-component candidates: document-unique paths.

    A path qualifies when every sampled document containing ``path``
    has exactly one node on it (the paper's key assumption for
    components such as ``/country`` and ``/country/year``).
    """
    root_tag = path.split("/")[1]
    doc_ids = set()
    for node_id in node_store.by_path(path)[:50]:
        doc_ids.add(collection.node(node_id).doc_id)
    components = []
    for candidate in node_store.paths():
        if len(components) >= limit:
            break
        if not candidate.startswith(f"/{root_tag}"):
            continue
        if candidate == path or "@" in candidate:
            continue
        if candidate.count("/") > 2:
            continue  # shallow components generalize best
        per_doc = {}
        for node_id in node_store.by_path(candidate):
            doc_id = collection.node(node_id).doc_id
            if doc_id in doc_ids:
                per_doc[doc_id] = per_doc.get(doc_id, 0) + 1
        if per_doc and set(per_doc) >= doc_ids and all(
            count == 1 for count in per_doc.values()
        ):
            components.append(candidate)
    return components


def discover_key(collection, node_store, path, max_components=3):
    """A minimal verified relative key for nodes on ``path``.

    GORDIAN-style search: assemble a candidate component set (document
    -unique absolute paths, then sibling discriminators), try subsets
    in increasing size, verify uniqueness against every node on the
    path, and return the first (smallest) verified
    :class:`RelativeKey` -- or ``None`` when no combination works.
    """
    node_ids = node_store.by_path(path)
    if not node_ids:
        return None
    absolute = _document_level_components(collection, node_store, path)
    relative = _sibling_components(collection, node_store, path)
    # Two-phase search: prefer keys that do not use the node's own
    # value ("."), matching the paper's fact keys; fall back to
    # self-inclusive keys, which is how Figure 3 keys dimensions
    # (e.g. import-country's key is (/country, /country/year, .)).
    for pool in (absolute + relative, ["."] + absolute + relative):
        if not pool:
            continue
        for size in range(1, min(max_components, len(pool)) + 1):
            for combo in itertools.combinations(pool, size):
                key = RelativeKey(list(combo))
                try:
                    unique, _duplicates = key.verify_uniqueness(
                        collection, node_store, node_ids
                    )
                except KeyResolutionError:
                    continue
                if unique:
                    return key
    return None


class FactDimensionDiscoverer:
    """Profiles a collection and proposes facts and dimensions.

    Heuristics (tunable):

    * a path is a *fact candidate* when at least ``numeric_threshold``
      of its values parse as numbers and it occurs at least
      ``min_occurrences`` times;
    * a path is a *dimension candidate* when it is categorical (mostly
      non-numeric), repeats values (cardinality ratio at most
      ``dimension_cardinality``), and spans several documents.

    Both kinds only qualify if a key can be discovered for them.
    """

    def __init__(self, collection, node_store, min_occurrences=5,
                 numeric_threshold=0.8, dimension_cardinality=0.5,
                 sample_values=5):
        self.collection = collection
        self.node_store = node_store
        self.min_occurrences = min_occurrences
        self.numeric_threshold = numeric_threshold
        self.dimension_cardinality = dimension_cardinality
        self.sample_values = sample_values

    # -- profiling -----------------------------------------------------------

    def profile_paths(self, paths=None):
        """Value profiles for the given (default: all) paths."""
        if paths is None:
            paths = self.node_store.paths()
        profiles = {}
        for path in paths:
            profile = PathProfile(path)
            for node_id in self.node_store.by_path(path):
                node = self.collection.node(node_id)
                value = node.value
                if not value:
                    continue
                profile.count += 1
                profile.distinct.add(value)
                profile.document_ids.add(node.doc_id)
                if parse_measure(value) is not None:
                    profile.numeric += 1
                if len(profile.samples) < self.sample_values:
                    profile.samples.append(value)
            if profile.count:
                profiles[path] = profile
        return profiles

    # -- discovery ------------------------------------------------------------

    def discover(self, paths=None, discover_keys=True):
        """Fact and dimension candidates, best first.

        Returns ``(facts, dimensions)`` -- two lists of
        :class:`Candidate`.  With ``discover_keys`` (the default) each
        candidate carries a verified minimal key; candidates for which
        no key can be found are dropped, because SEDA "requires every
        dimension table to have a key in order to have meaningful
        aggregates".
        """
        profiles = self.profile_paths(paths)
        facts = []
        dimensions = []
        for path, profile in profiles.items():
            if profile.count < self.min_occurrences:
                continue
            kind = self._classify(profile)
            if kind is None:
                continue
            key = None
            if discover_keys:
                key = discover_key(self.collection, self.node_store, path)
                if key is None:
                    continue
            score = self._score(kind, profile)
            facts_or_dims = facts if kind == "fact" else dimensions
            facts_or_dims.append(Candidate(kind, path, profile, key, score))
        facts.sort(key=lambda c: -c.score)
        dimensions.sort(key=lambda c: -c.score)
        return facts, dimensions

    def register(self, registry, facts, dimensions):
        """Install discovered candidates into a cube registry."""
        for candidate in facts:
            if not registry.has_fact(candidate.suggested_name()):
                registry.add_fact(
                    candidate.suggested_name(),
                    [(candidate.path, candidate.key)],
                )
        for candidate in dimensions:
            if not registry.has_dimension(candidate.suggested_name()):
                registry.add_dimension(
                    candidate.suggested_name(),
                    [(candidate.path, candidate.key)],
                )
        return registry

    # -- internals ------------------------------------------------------------

    def _classify(self, profile):
        if profile.numeric_ratio >= self.numeric_threshold:
            return "fact"
        if (
            profile.numeric_ratio < 0.5
            and profile.cardinality_ratio <= self.dimension_cardinality
            and len(profile.document_ids) > 1
        ):
            return "dimension"
        return None

    def _score(self, kind, profile):
        """Coverage-weighted confidence in [0, ~1]."""
        coverage = len(profile.document_ids) / max(1, len(
            self.collection.documents
        ))
        if kind == "fact":
            return profile.numeric_ratio * coverage
        return (1.0 - profile.cardinality_ratio) * coverage
