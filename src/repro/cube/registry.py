"""The facts and dimensions registry: F and D (Section 7).

Both sets are nested relations with schema ``<name, ContextList>``
where ``ContextList`` has schema ``<context, key>``.  The context list
is a *relation* because heterogeneous collections spread the same
logical fact over several paths -- the paper's example is the GDP fact
defined by both ``/country/economy/GDP`` (pre-2005 documents) and
``/country/economy/GDP_ppp`` (2005 onward), a consequence of schema
evolution.

The registry is seeded by an administrator and extended by users during
query processing (the pay-as-you-go element of SEDA).
"""

from repro.cube.keys import RelativeKey

FACT = "fact"
DIMENSION = "dimension"


class CubeDefinition:
    """One fact or dimension: a name plus its context list."""

    __slots__ = ("name", "kind", "context_list")

    def __init__(self, name, kind, context_list):
        if kind not in (FACT, DIMENSION):
            raise ValueError(f"kind must be 'fact' or 'dimension', got {kind!r}")
        self.name = name
        self.kind = kind
        self.context_list = []
        for context, key in context_list:
            if not isinstance(key, RelativeKey):
                key = RelativeKey(key)
            self.context_list.append((context, key))
        if not self.context_list:
            raise ValueError(f"{kind} {name!r} needs at least one context")

    @property
    def contexts(self):
        """The set of paths defining this fact/dimension."""
        return {context for context, _key in self.context_list}

    def key_for_context(self, context):
        """The relative key registered for ``context``, or ``None``."""
        for candidate, key in self.context_list:
            if candidate == context:
                return key
        return None

    def add_context(self, context, key):
        if not isinstance(key, RelativeKey):
            key = RelativeKey(key)
        self.context_list.append((context, key))

    def matches_paths(self, paths):
        """Full match: every result path is one of this definition's
        contexts (the paper's subset semantics,
        ``pi_cp(R) subseteq pi_context(ContextList)``)."""
        return bool(paths) and set(paths) <= self.contexts

    def overlaps_paths(self, paths):
        """Partial match: some but not all paths are known contexts."""
        intersection = set(paths) & self.contexts
        return bool(intersection) and not set(paths) <= self.contexts

    # -- snapshot serialization ---------------------------------------------

    def to_dict(self):
        """Snapshot form: name, kind, and the full context list."""
        return {
            "name": self.name,
            "kind": self.kind,
            "context_list": [
                [context, list(key.components)]
                for context, key in self.context_list
            ],
        }

    @classmethod
    def from_dict(cls, payload):
        return cls(
            payload["name"],
            payload["kind"],
            [
                (context, RelativeKey(components))
                for context, components in payload["context_list"]
            ],
        )

    def __repr__(self):
        return (
            f"CubeDefinition({self.name!r}, {self.kind}, "
            f"contexts={sorted(self.contexts)})"
        )


class Registry:
    """The system's known facts F and dimensions D."""

    def __init__(self):
        self._facts = {}
        self._dimensions = {}

    # -- administration ----------------------------------------------------

    def add_fact(self, name, context_list):
        """Register a fact; ``context_list`` is ``[(path, key), ...]``."""
        definition = CubeDefinition(name, FACT, context_list)
        self._facts[name] = definition
        return definition

    def add_dimension(self, name, context_list):
        definition = CubeDefinition(name, DIMENSION, context_list)
        self._dimensions[name] = definition
        return definition

    def remove_fact(self, name):
        del self._facts[name]

    def remove_dimension(self, name):
        del self._dimensions[name]

    # -- snapshot serialization ----------------------------------------------

    def to_dict(self):
        """Snapshot form: every registered fact and dimension."""
        return {
            "facts": [
                definition.to_dict() for definition in self._facts.values()
            ],
            "dimensions": [
                definition.to_dict()
                for definition in self._dimensions.values()
            ],
        }

    @classmethod
    def from_dict(cls, payload):
        registry = cls()
        for record in payload["facts"]:
            definition = CubeDefinition.from_dict(record)
            registry._facts[definition.name] = definition
        for record in payload["dimensions"]:
            definition = CubeDefinition.from_dict(record)
            registry._dimensions[definition.name] = definition
        return registry

    # -- lookups -------------------------------------------------------------

    @property
    def facts(self):
        return list(self._facts.values())

    @property
    def dimensions(self):
        return list(self._dimensions.values())

    def fact(self, name):
        return self._facts[name]

    def dimension(self, name):
        return self._dimensions[name]

    def has_fact(self, name):
        return name in self._facts

    def has_dimension(self, name):
        return name in self._dimensions

    # -- matching helpers ---------------------------------------------------------

    def full_matches(self, paths):
        """Definitions whose contexts cover all ``paths``."""
        return [
            definition
            for definition in list(self._facts.values())
            + list(self._dimensions.values())
            if definition.matches_paths(paths)
        ]

    def partial_matches(self, paths):
        """Definitions that intersect ``paths`` without covering them."""
        return [
            definition
            for definition in list(self._facts.values())
            + list(self._dimensions.values())
            if definition.overlaps_paths(paths)
        ]

    def dimension_for_context(self, path):
        """The first dimension whose contexts include ``path``."""
        for definition in self._dimensions.values():
            if path in definition.contexts:
                return definition
        return None

    def __repr__(self):
        return (
            f"Registry(facts={sorted(self._facts)}, "
            f"dimensions={sorted(self._dimensions)})"
        )
