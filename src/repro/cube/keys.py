"""Relative XML keys (Buneman et al. [5], as used in Section 7).

A relative key for a node ``n`` is a list of path expressions; each is
either *absolute* (``/country/year`` -- resolved from the document
root) or *relative* (``.`` for the node itself, ``../trade_country``
for a sibling -- resolved from ``n``).  The paper's running example:
the key of the percentage fact is
``(/country, /country/year, ../trade_country)``.

Resolution enforces the paper's stated assumptions: every component
must resolve to *exactly one* node ("this assumes that every percentage
in the result will have exactly one such sibling, as well as that every
document in the result will have exactly one /country and
/country/year elements") -- anything else raises
:class:`KeyResolutionError` so that the caller can warn the user.
"""


class KeyResolutionError(ValueError):
    """A key component resolved to zero or multiple nodes."""

    def __init__(self, component, node, count):
        super().__init__(
            f"key component {component!r} resolved to {count} nodes "
            f"(expected exactly 1) relative to node at {node.path}"
        )
        self.component = component
        self.count = count


class RelativeKey:
    """An ordered list of absolute/relative path components."""

    __slots__ = ("components",)

    def __init__(self, components):
        self.components = tuple(components)
        if not self.components:
            raise ValueError("a relative key needs at least one component")
        for component in self.components:
            if not (
                component == "."
                or component.startswith("/")
                or component.startswith("..")
            ):
                raise ValueError(
                    f"key component {component!r} must be '.', absolute "
                    "(/a/b), or relative (../a)"
                )

    # -- resolution --------------------------------------------------------

    def resolve_nodes(self, collection, node_store, node_id):
        """Resolve every component to a node id, relative to ``node_id``.

        Returns a list aligned with ``components``.  Raises
        :class:`KeyResolutionError` on missing or ambiguous components.
        """
        node = collection.node(node_id)
        resolved = []
        for component in self.components:
            matches = self._resolve_component(
                collection, node_store, node, component
            )
            if len(matches) != 1:
                raise KeyResolutionError(component, node, len(matches))
            resolved.append(matches[0])
        return resolved

    def resolve_values(self, collection, node_store, node_id):
        """Key values (node contents) for ``node_id``, component order."""
        return tuple(
            collection.node(resolved).value
            for resolved in self.resolve_nodes(collection, node_store, node_id)
        )

    def _resolve_component(self, collection, node_store, node, component):
        if component == ".":
            return [node.node_id]
        if component.startswith("/"):
            # Absolute: all nodes on that path within the same document.
            return [
                node_id
                for node_id in node_store.by_path(component)
                if collection.node(node_id).doc_id == node.doc_id
            ]
        # Relative: ../step/step...
        current = [node.node_id]
        for step in component.split("/"):
            next_nodes = []
            for node_id in current:
                data_node = collection.node(node_id)
                if step == "..":
                    if data_node.parent_id is not None:
                        next_nodes.append(data_node.parent_id)
                elif step == ".":
                    next_nodes.append(node_id)
                else:
                    for child_id in data_node.child_ids:
                        if collection.node(child_id).tag == step:
                            next_nodes.append(child_id)
            current = next_nodes
        return current

    # -- verification -----------------------------------------------------------

    def verify_uniqueness(self, collection, node_store, node_ids):
        """Check the key uniquely identifies each node in ``node_ids``.

        The paper: "The system automatically verifies the keys by
        computing them for every cni in R(q) and checking their
        uniqueness."  Returns ``(is_unique, duplicates)`` where
        duplicates lists offending key tuples.
        """
        seen = {}
        duplicates = []
        for node_id in node_ids:
            values = self.resolve_values(collection, node_store, node_id)
            if values in seen and seen[values] != node_id:
                duplicates.append(values)
            else:
                seen[values] = node_id
        return (not duplicates), duplicates

    # -- dunder ------------------------------------------------------------------

    def __eq__(self, other):
        if not isinstance(other, RelativeKey):
            return NotImplemented
        return self.components == other.components

    def __hash__(self):
        return hash(self.components)

    def __iter__(self):
        return iter(self.components)

    def __len__(self):
        return len(self.components)

    def __repr__(self):
        return f"RelativeKey({list(self.components)!r})"
