"""Star schema tables: facts, dimensions, and their container.

Figure 3(c): the fact table for the percentage fact carries the key
columns (country, year, import-country) plus the measure; dimension
tables list the distinct members of each dimension.
"""


class DimensionTable:
    """One dimension's member list."""

    __slots__ = ("name", "members")

    def __init__(self, name, members):
        self.name = name
        self.members = sorted(set(members))

    def __len__(self):
        return len(self.members)

    def __contains__(self, member):
        return member in self.members

    def __iter__(self):
        return iter(self.members)

    def __repr__(self):
        return f"DimensionTable({self.name!r}, members={len(self.members)})"


class FactTable:
    """One fact table: key columns + one or more measure columns.

    ``key_columns`` name the dimension columns (in key order);
    ``measures`` name the measure columns; ``rows`` are tuples laid out
    as ``key values + measure values``.  Fact tables sharing the same
    key columns can be merged (the paper's optimization).
    """

    def __init__(self, name, key_columns, measures, rows):
        self.name = name
        self.key_columns = list(key_columns)
        self.measures = list(measures)
        self.rows = list(rows)

    @property
    def columns(self):
        return self.key_columns + self.measures

    def key_of(self, row):
        return tuple(row[: len(self.key_columns)])

    def measures_of(self, row):
        return tuple(row[len(self.key_columns):])

    def has_primary_key(self):
        """True when the key columns uniquely identify every row."""
        seen = set()
        for row in self.rows:
            key = self.key_of(row)
            if key in seen:
                return False
            seen.add(key)
        return True

    def merge_with(self, other, merged_name=None):
        """Merge another fact table with identical key columns.

        "As an optimization, we merge fact tables if they have the same
        keys."  Measures become side-by-side columns, outer-joined on
        the key (missing measures are ``None``).
        """
        if self.key_columns != other.key_columns:
            raise ValueError(
                f"cannot merge fact tables with different keys: "
                f"{self.key_columns} vs {other.key_columns}"
            )
        by_key = {}
        blank_left = (None,) * len(self.measures)
        blank_right = (None,) * len(other.measures)
        for row in self.rows:
            by_key[self.key_of(row)] = [self.measures_of(row), blank_right]
        for row in other.rows:
            entry = by_key.setdefault(other.key_of(row), [blank_left, blank_right])
            entry[1] = other.measures_of(row)
        rows = [
            key + tuple(left) + tuple(right)
            for key, (left, right) in sorted(by_key.items(),
                                             key=lambda kv: str(kv[0]))
        ]
        return FactTable(
            merged_name or f"{self.name}+{other.name}",
            self.key_columns,
            self.measures + other.measures,
            rows,
        )

    def __len__(self):
        return len(self.rows)

    def __iter__(self):
        return iter(self.rows)

    def __repr__(self):
        return (
            f"FactTable({self.name!r}, key={self.key_columns}, "
            f"measures={self.measures}, rows={len(self.rows)})"
        )


class StarSchema:
    """The generated star schema: fact tables plus dimension tables."""

    def __init__(self, fact_tables, dimension_tables):
        self.fact_tables = {table.name: table for table in fact_tables}
        self.dimension_tables = {table.name: table for table in dimension_tables}

    def fact(self, name):
        return self.fact_tables[name]

    def dimension(self, name):
        return self.dimension_tables[name]

    def merge_compatible_facts(self):
        """Apply the same-key fact-table merge optimization in place."""
        by_key = {}
        for table in self.fact_tables.values():
            by_key.setdefault(tuple(table.key_columns), []).append(table)
        merged_tables = {}
        for tables in by_key.values():
            merged = tables[0]
            for other in tables[1:]:
                merged = merged.merge_with(other)
            merged_tables[merged.name] = merged
        self.fact_tables = merged_tables
        return self

    def sql_statements(self):
        """DDL-ish rendering of the schema (the paper generates SQL/XML
        to populate the tables; we render the equivalent for docs)."""
        statements = []
        for table in self.dimension_tables.values():
            statements.append(
                f"CREATE TABLE dim_{_identifier(table.name)} "
                f"({_identifier(table.name)} VARCHAR);"
            )
        for table in self.fact_tables.values():
            columns = ", ".join(
                f"{_identifier(column)} VARCHAR" for column in table.key_columns
            )
            measures = ", ".join(
                f"{_identifier(measure)} DOUBLE" for measure in table.measures
            )
            statements.append(
                f"CREATE TABLE fact_{_identifier(table.name)} "
                f"({columns}, {measures});"
            )
        return statements

    def __repr__(self):
        return (
            f"StarSchema(facts={sorted(self.fact_tables)}, "
            f"dimensions={sorted(self.dimension_tables)})"
        )


def _identifier(name):
    """A SQL-safe identifier from a fact/dimension name."""
    return "".join(ch if ch.isalnum() else "_" for ch in name).strip("_").lower()
