"""Step 2 -- augmenting the result with key columns.

"Given the sets Ffinal and Dfinal, we may need to expand R(q) to make
sure it includes all key and value columns of every fact and
dimension."  The canonical example: the percentage fact's key is
``(/country, /country/year, ../trade_country)`` and ``year`` is not in
R(q) -- so a ``/country/year`` column is added, and because that path
is the context of the known ``year`` dimension, the dimension joins
``Dfinal`` automatically.
"""

from repro.cube.keys import KeyResolutionError


class AugmentedResult:
    """A result table extended with resolved key columns.

    ``added_columns`` maps a key component (path expression string) to
    a per-row list of resolved node ids (``None`` where resolution
    failed); base term columns are reused when the component is already
    bound by the query.
    """

    def __init__(self, base, fact_columns, added_columns, auto_dimensions,
                 failures):
        self.base = base
        self.fact_columns = fact_columns
        self.added_columns = added_columns
        self.auto_dimensions = auto_dimensions
        self.failures = failures

    def column_values(self, component):
        """Content values for an added key column, row order."""
        collection = self.base.collection
        return [
            collection.node(node_id).value if node_id is not None else None
            for node_id in self.added_columns[component]
        ]

    def __len__(self):
        return len(self.base)


class Augmenter:
    """Expands a result table with the key columns of chosen facts."""

    def __init__(self, collection, node_store, registry):
        self.collection = collection
        self.node_store = node_store
        self.registry = registry

    def augment(self, result_table, facts, dimensions):
        """Resolve key components for every fact column.

        ``facts``/``dimensions`` are the user-adjusted Ffinal and
        Dfinal.  For each fact bound to a result column, every key
        component is resolved per row; components that are absolute
        paths and correspond to a known dimension's context pull that
        dimension into the returned ``auto_dimensions`` list (the
        Figure 3 year-dimension behavior).
        """
        fact_columns = self._bind_columns(result_table, facts)
        added_columns = {}
        failures = []
        auto_dimensions = []
        seen_dimensions = {dimension.name for dimension in dimensions}

        row_count = len(result_table.rows)
        for fact, column_index in fact_columns:
            for row_number, row in enumerate(result_table.rows):
                node_id = row[column_index]
                context = self.collection.node(node_id).path
                key = fact.key_for_context(context)
                if key is None:
                    failures.append(
                        (fact.name, row_number,
                         f"no key registered for context {context}")
                    )
                    continue
                try:
                    resolved = key.resolve_nodes(
                        self.collection, self.node_store, node_id
                    )
                except KeyResolutionError as error:
                    failures.append((fact.name, row_number, str(error)))
                    continue
                for component, resolved_id in zip(key, resolved):
                    if component == ".":
                        continue
                    column = added_columns.setdefault(
                        component, [None] * row_count
                    )
                    column[row_number] = resolved_id

        # Auto-match added absolute-path columns against known dimensions.
        for component in added_columns:
            if not component.startswith("/"):
                continue
            dimension = self.registry.dimension_for_context(component)
            if dimension is not None and dimension.name not in seen_dimensions:
                auto_dimensions.append(dimension)
                seen_dimensions.add(dimension.name)

        return AugmentedResult(
            result_table, fact_columns, added_columns, auto_dimensions,
            failures,
        )

    def _bind_columns(self, result_table, facts):
        """Pair each chosen fact with the result column it matched."""
        bindings = []
        for fact in facts:
            for index in range(len(result_table.query.terms)):
                paths = result_table.column_paths(index)
                if paths and paths <= fact.contexts:
                    bindings.append((fact, index))
                    break
        return bindings
