"""Step 3 -- extraction: generating and populating the star schema.

For every fact in Ffinal a fact table is generated; for every
dimension in Dfinal a dimension table.  Key components that correspond
to known dimensions take that dimension's name as their column name
(Figure 3's fact table columns: country, year, import-country).
Measure strings are parsed into numbers (``"16.9%"`` -> 16.9,
``"12.31T"`` -> 12.31e12) so that the OLAP layer can aggregate them.
"""

import re

from repro.cube.keys import KeyResolutionError
from repro.cube.star import DimensionTable, FactTable, StarSchema

_MEASURE_PATTERN = re.compile(
    r"^\s*\$?\s*(-?[0-9][0-9,]*(?:\.[0-9]+)?)\s*"
    r"(%|T|B|M|K|trillion|billion|million|thousand)?\s*$",
    re.IGNORECASE,
)

_SCALE = {
    "t": 1e12, "trillion": 1e12,
    "b": 1e9, "billion": 1e9,
    "m": 1e6, "million": 1e6,
    "k": 1e3, "thousand": 1e3,
}


def parse_measure(text):
    """Parse a measure string into a float, or ``None`` if non-numeric.

    Handles the World Factbook value shapes: percentages (unit
    suffix ``%`` is dropped -- ``"16.9%"`` -> 16.9), magnitude suffixes
    (``"12.31T"`` -> 1.231e13, ``"924.4B"`` -> 9.244e11), currency
    markers, and thousands separators.
    """
    if text is None:
        return None
    match = _MEASURE_PATTERN.match(text)
    if not match:
        return None
    number = float(match.group(1).replace(",", ""))
    suffix = match.group(2)
    if suffix and suffix != "%":
        number *= _SCALE[suffix.lower()]
    return number


class TableExtractor:
    """Generates fact and dimension tables from an augmented result."""

    def __init__(self, collection, node_store, registry):
        self.collection = collection
        self.node_store = node_store
        self.registry = registry

    def extract(self, augmented, facts, dimensions, merge_facts=True,
                numeric_measures=True):
        """Build the :class:`StarSchema`.

        ``facts`` and ``dimensions`` are the final (augmented) sets.
        Rows whose key fails to resolve are skipped -- they are already
        recorded in ``augmented.failures``.
        """
        fact_tables = []
        dimension_members = {dimension.name: [] for dimension in dimensions}

        for fact, column_index in augmented.fact_columns:
            table = self._fact_table(
                augmented, fact, column_index, dimension_members,
                numeric_measures,
            )
            fact_tables.append(table)

        # Dimensions bound directly to result columns contribute their
        # column values as members.
        for dimension in dimensions:
            for index in range(len(augmented.base.query.terms)):
                paths = augmented.base.column_paths(index)
                if paths and paths <= dimension.contexts:
                    dimension_members[dimension.name].extend(
                        value
                        for value in augmented.base.values(index)
                        if value
                    )

        dimension_tables = [
            DimensionTable(name, members)
            for name, members in dimension_members.items()
        ]
        schema = StarSchema(fact_tables, dimension_tables)
        if merge_facts:
            schema.merge_compatible_facts()
        return schema

    # -- internals ------------------------------------------------------------

    def _fact_table(self, augmented, fact, column_index, dimension_members,
                    numeric_measures):
        base = augmented.base
        rows = []
        key_columns = None
        for row_number, row in enumerate(base.rows):
            node_id = row[column_index]
            context = self.collection.node(node_id).path
            key = fact.key_for_context(context)
            if key is None:
                continue
            try:
                resolved = key.resolve_nodes(
                    self.collection, self.node_store, node_id
                )
            except KeyResolutionError:
                continue
            key_values = []
            column_names = []
            for component, resolved_id in zip(key, resolved):
                if component == ".":
                    continue  # the measure itself
                value = self.collection.node(resolved_id).value
                column_names.append(self._column_name(component, resolved_id))
                key_values.append(value)
            if key_columns is None:
                key_columns = column_names
            measure_text = self.collection.node(node_id).value
            measure = (
                parse_measure(measure_text) if numeric_measures
                else measure_text
            )
            if numeric_measures and measure is None:
                measure = measure_text  # keep raw when unparseable
            rows.append(tuple(key_values) + (measure,))
            # Key values feed the dimension member lists.
            for name, value in zip(column_names, key_values):
                if name in dimension_members and value:
                    dimension_members[name].append(value)
        if key_columns is None:
            key_columns = []
        deduped = sorted(set(rows), key=lambda r: tuple(str(c) for c in r))
        return FactTable(fact.name, key_columns, [fact.name], deduped)

    def _column_name(self, component, resolved_id):
        """Column name for a key component: the matching dimension's
        name when one exists, else the component's leaf step."""
        if component.startswith("/"):
            dimension = self.registry.dimension_for_context(component)
            if dimension is not None:
                return dimension.name
            return component.rsplit("/", 1)[-1]
        node = self.collection.node(resolved_id)
        dimension = self.registry.dimension_for_context(node.path)
        if dimension is not None:
            return dimension.name
        return component.rsplit("/", 1)[-1]
    # -- SQL/XML rendering -------------------------------------------------------

    def sql_for_fact(self, fact, context):
        """The SQL/XML query SEDA would generate for one fact context.

        Rendered for documentation parity with the paper ("we generate
        database queries to compute the fact and dimension tables");
        execution in this reproduction goes directly against the store.
        """
        key = fact.key_for_context(context)
        components = ", ".join(f"'{component}'" for component in key or ())
        return (
            "SELECT X.* FROM xml_documents, XMLTABLE("
            f"'{context}' COLUMNS value VARCHAR PATH '.', "
            f"key_components({components})) AS X;"
        )
