"""SEDA's compactness ranking packaged as a baseline-comparable API.

The tree heuristics return answer nodes; SEDA returns ranked node
tuples.  For the heuristics comparison we expose compactness ranking
over the same keyword match sets, so scenario tests can ask "which
pairs does each approach keep?" on an equal footing.
"""

from repro.baselines.lca import KeywordMatcher, lca_dewey


class CompactnessRanker:
    """Ranks same-document keyword match tuples by tree compactness."""

    def __init__(self, collection, inverted):
        self.collection = collection
        self.inverted = inverted
        self.matcher = KeywordMatcher(collection, inverted)

    def rank_pairs(self, keyword_a, keyword_b, limit=None):
        """Pairs (node_a, node_b, distance) sorted by tree distance.

        Unlike the LCA heuristics, *every* pair is retained with a
        score -- SEDA never silently drops a combination; the user
        disambiguates via summaries instead.
        """
        ranked = []
        match_sets = self.matcher.match_sets([keyword_a, keyword_b])
        for _doc_id, (matches_a, matches_b) in match_sets.items():
            for node_a in matches_a:
                for node_b in matches_b:
                    lca_depth = lca_dewey([node_a.dewey, node_b.dewey]).depth
                    distance = (
                        node_a.dewey.depth - lca_depth
                    ) + (node_b.dewey.depth - lca_depth)
                    ranked.append((node_a, node_b, distance))
        ranked.sort(
            key=lambda item: (item[2], item[0].dewey, item[1].dewey)
        )
        if limit is not None:
            ranked = ranked[:limit]
        return ranked
