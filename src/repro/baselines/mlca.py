"""Meaningful LCA (MLCA) as in Schema-Free XQuery (Li, Yu, Jagadish [12]).

Two nodes a (of type A) and b (of type B) are *meaningfully related*
when no other node b' of type B exists with lca(a, b') a proper
descendant of lca(a, b) -- i.e. b is among the structurally closest
B-nodes to a (and symmetrically).  A match tuple is meaningful when
every pair of its nodes is meaningfully related; node "type" is the
node's tag name, as in Schema-Free XQuery.
"""

import itertools

from repro.baselines.lca import KeywordMatcher, lca_dewey


def _meaningful(node_a, node_b, peers_of_b):
    """Is (a, b) meaningful given all candidate b-typed peers?

    Neither endpoint competes against itself: when a and b share a tag
    type, a is not its own closer b-alternative.
    """
    base_depth = lca_dewey([node_a.dewey, node_b.dewey]).depth
    for other in peers_of_b:
        if other.dewey == node_b.dewey or other.dewey == node_a.dewey:
            continue
        if lca_dewey([node_a.dewey, other.dewey]).depth > base_depth:
            return False
    return True


def mlca_pairs(match_a, match_b):
    """Meaningful pairs between two same-document match lists."""
    pairs = []
    by_tag_b = {}
    for node in match_b:
        by_tag_b.setdefault(node.tag, []).append(node)
    by_tag_a = {}
    for node in match_a:
        by_tag_a.setdefault(node.tag, []).append(node)
    for node_a, node_b in itertools.product(match_a, match_b):
        if _meaningful(node_a, node_b, by_tag_b[node_b.tag]) and _meaningful(
            node_b, node_a, by_tag_a[node_a.tag]
        ):
            pairs.append((node_a, node_b))
    return pairs


def mlca(collection, inverted, keywords):
    """MLCA answers: (doc_id, lca DeweyID, node tuple) per meaningful
    match tuple, sorted; tuples need all pairwise relations meaningful.

    Competitor nodes b' range over *all* document nodes of b's type
    (per the Schema-Free XQuery definition), not just keyword matches:
    alpha's lead is chen even when the query keyword only hits smith.
    """
    matcher = KeywordMatcher(collection, inverted)
    answers = []
    for doc_id, match_lists in matcher.match_sets(keywords).items():
        peers_by_tag = {}
        for node in collection.document(doc_id).nodes:
            peers_by_tag.setdefault(node.tag, []).append(node)
        for combo in itertools.product(*match_lists):
            meaningful = True
            for i, j in itertools.combinations(range(len(combo)), 2):
                if not (
                    _meaningful(combo[i], combo[j],
                                peers_by_tag[combo[j].tag])
                    and _meaningful(combo[j], combo[i],
                                    peers_by_tag[combo[i].tag])
                ):
                    meaningful = False
                    break
            if meaningful:
                lca = lca_dewey([node.dewey for node in combo])
                answers.append((doc_id, lca, tuple(combo)))
    answers.sort(key=lambda answer: (answer[0], answer[1]))
    return answers
