"""XML keyword-search heuristics: the baselines SEDA argues about.

Section 2 positions SEDA against flexible-querying heuristics --
XSEarch, Schema-Free XQuery (MLCA), SLCA, XRank's ELCA -- and cites
[22] for evidence that each "works in some scenarios but fails in
others", motivating SEDA's user-in-the-loop disambiguation.  This
package implements the three classic tree heuristics plus SEDA's
compactness ranking so the comparison is reproducible.

All three heuristics operate per document tree on keyword match sets
(nodes whose text contains the keyword), returning answer nodes:

* :func:`slca` -- smallest lowest common ancestors [26];
* :func:`elca` -- exclusive LCAs as in XRank [10];
* :func:`mlca` -- meaningful LCAs as in Schema-Free XQuery [12];
* :func:`xsearch` -- XSEarch interconnection semantics [6].
"""

from repro.baselines.compactness import CompactnessRanker
from repro.baselines.elca import elca
from repro.baselines.lca import KeywordMatcher, lca_dewey
from repro.baselines.mlca import mlca, mlca_pairs
from repro.baselines.slca import slca
from repro.baselines.xsearch import interconnected, xsearch

__all__ = [
    "CompactnessRanker",
    "KeywordMatcher",
    "elca",
    "interconnected",
    "lca_dewey",
    "mlca",
    "mlca_pairs",
    "slca",
    "xsearch",
]
