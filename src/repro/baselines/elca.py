"""Exclusive LCA (ELCA) keyword search, as in XRank [10].

A node v is an ELCA when, for every keyword, v's subtree contains a
match that is *not* located in the subtree of any descendant of v that
itself contains all keywords.  Intuitively: v has its own witnesses
after its self-sufficient children have claimed theirs.
"""

import collections

from repro.baselines.lca import KeywordMatcher


def elca(collection, inverted, keywords):
    """ELCA answers for ``keywords``: list of (doc_id, DeweyID), sorted."""
    matcher = KeywordMatcher(collection, inverted)
    answers = []
    for doc_id, match_lists in matcher.match_sets(keywords).items():
        answers.extend(
            (doc_id, dewey)
            for dewey in _elca_one_document(match_lists, len(keywords))
        )
    answers.sort()
    return answers


def _elca_one_document(match_lists, keyword_count):
    """ELCAs inside one document tree."""
    # Count matches per keyword in every subtree by walking match
    # ancestors (documents are shallow; matches are few).
    subtree_counts = collections.defaultdict(
        lambda: [0] * keyword_count
    )
    direct_matches = collections.defaultdict(
        lambda: [0] * keyword_count
    )
    for keyword_index, nodes in enumerate(match_lists):
        for node in nodes:
            direct_matches[node.dewey][keyword_index] += 1
            components = node.dewey.components
            for depth in range(1, len(components) + 1):
                prefix = components[:depth]
                subtree_counts[prefix][keyword_index] += 1

    # Complete ancestors: subtrees containing every keyword.
    complete = {
        prefix
        for prefix, counts in subtree_counts.items()
        if all(count > 0 for count in counts)
    }

    elcas = []
    for prefix in complete:
        # Witness check: for each keyword, some match under `prefix`
        # must not fall under a complete *proper descendant*.
        children_complete = [
            other
            for other in complete
            if len(other) > len(prefix) and other[: len(prefix)] == prefix
        ]
        is_elca = True
        for keyword_index in range(keyword_count):
            total = subtree_counts[prefix][keyword_index]
            claimed = 0
            # Only maximal complete descendants claim matches (nested
            # complete subtrees would double count).
            maximal = [
                other
                for other in children_complete
                if not any(
                    other[: len(third)] == third and len(third) < len(other)
                    for third in children_complete
                )
            ]
            for other in maximal:
                claimed += subtree_counts[other][keyword_index]
            if total - claimed <= 0:
                is_elca = False
                break
        if is_elca:
            from repro.model.dewey import DeweyID

            elcas.append(DeweyID(prefix))
    return sorted(elcas)
