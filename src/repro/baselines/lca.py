"""Shared utilities for the LCA-family heuristics."""

import collections

from repro.model.dewey import DeweyID


def lca_dewey(deweys):
    """The lowest common ancestor Dewey ID of same-document nodes."""
    iterator = iter(deweys)
    try:
        first = next(iterator)
    except StopIteration:
        raise ValueError("lca_dewey needs at least one Dewey ID") from None
    common = list(first.components)
    for dewey in iterator:
        components = dewey.components
        limit = min(len(common), len(components))
        i = 0
        while i < limit and common[i] == components[i]:
            i += 1
        del common[i:]
        if not common:
            raise ValueError("nodes do not share a document root")
    return DeweyID(common)


class KeywordMatcher:
    """Per-document keyword match sets for the tree heuristics.

    A node matches a keyword when the keyword occurs in the node's
    direct text (the same convention the SEDA indexes use), looked up
    through the inverted index and grouped by document.
    """

    def __init__(self, collection, inverted):
        self.collection = collection
        self.inverted = inverted

    def match_sets(self, keywords):
        """``{doc_id: [sorted-dewey node lists per keyword]}``.

        Documents missing any keyword are excluded -- no tree answer
        can exist there.
        """
        analyzer = self.inverted.analyzer
        per_keyword = []
        for keyword in keywords:
            term = analyzer.terms(keyword)
            if len(term) != 1:
                raise ValueError(
                    f"keyword {keyword!r} must analyze to one term"
                )
            by_doc = collections.defaultdict(list)
            for node_id in self.inverted.nodes_with_term(term[0]):
                node = self.collection.node(node_id)
                by_doc[node.doc_id].append(node)
            per_keyword.append(by_doc)
        if not per_keyword:
            return {}
        shared_docs = set(per_keyword[0])
        for by_doc in per_keyword[1:]:
            shared_docs &= set(by_doc)
        return {
            doc_id: [by_doc[doc_id] for by_doc in per_keyword]
            for doc_id in sorted(shared_docs)
        }
