"""Smallest LCA keyword search (Xu & Papakonstantinou [26]).

An SLCA answer is a node v such that (1) v's subtree contains at least
one match of every keyword and (2) no proper descendant of v also
does.  The implementation follows the indexed-lookup idea: for every
node in the smallest match set, find its closest neighbors in the
other sets (binary search over Dewey order), take the LCA, then prune
candidates that are ancestors of other candidates.
"""

import bisect

from repro.baselines.lca import KeywordMatcher, lca_dewey


def _closest_lca(anchor, others):
    """Best (deepest) LCA of ``anchor`` with one node from each list.

    For each other match list, the node maximizing the LCA depth with
    ``anchor`` is one of the two neighbors of ``anchor`` in Dewey
    order, so a binary search suffices.
    """
    deweys = [anchor.dewey]
    for nodes in others:
        keys = [node.dewey for node in nodes]
        position = bisect.bisect_left(keys, anchor.dewey)
        best = None
        best_depth = -1
        for candidate in (position - 1, position):
            if 0 <= candidate < len(keys):
                depth = lca_dewey([anchor.dewey, keys[candidate]]).depth
                if depth > best_depth:
                    best_depth = depth
                    best = keys[candidate]
        deweys.append(best)
    return lca_dewey(deweys)


def slca(collection, inverted, keywords):
    """SLCA answers for ``keywords``: list of (doc_id, DeweyID), sorted.

    Runs independently per document (tree semantics).
    """
    matcher = KeywordMatcher(collection, inverted)
    answers = []
    for doc_id, match_lists in matcher.match_sets(keywords).items():
        match_lists = sorted(match_lists, key=len)
        smallest, others = match_lists[0], match_lists[1:]
        candidates = set()
        for anchor in smallest:
            candidates.add(_closest_lca(anchor, others))
        # Keep only the smallest: drop any candidate with a proper
        # descendant candidate.
        for candidate in candidates:
            if not any(
                candidate.is_ancestor_of(other) for other in candidates
            ):
                answers.append((doc_id, candidate))
    answers.sort()
    return answers
