"""XSEarch interconnection semantics (Cohen et al. [6], cited in §2).

XSEarch deems two nodes *interconnected* when the tree path between
them (through their LCA) contains no two distinct nodes with the same
tag -- the intuition being that repeated tags signal crossing between
distinct real-world entities (e.g. from one ``item`` into another).  A
match tuple is an answer when all its nodes are pairwise
interconnected.

This heuristic is the fourth of the paper's flexible-querying
baselines; like the LCA family it silently drops some real
relationships (crossing two ``item`` entities is exactly the paper's
"cousin" percentage connection), which is the behaviour the
comparison benchmarks surface.
"""

import itertools

from repro.baselines.lca import KeywordMatcher, lca_dewey


def _chain_tags(collection, node, lca_depth):
    """Tags on the path from ``node`` (exclusive) up to the LCA
    (exclusive): the interior of node's side of the connecting path."""
    tags = []
    doc = collection.document(node.doc_id)
    dewey = node.dewey
    while dewey.depth > lca_depth + 1:
        dewey = dewey.parent()
        tags.append(doc.node_at(dewey).tag)
    return tags


def interconnected(collection, node_a, node_b):
    """The XSEarch relationship test for two same-document nodes.

    The connecting path is node_a .. LCA .. node_b; the test fails when
    any tag appears on two *distinct* nodes of that path (the two
    endpoints and the LCA included).
    """
    if node_a.doc_id != node_b.doc_id:
        return False
    lca = lca_dewey([node_a.dewey, node_b.dewey])
    doc = collection.document(node_a.doc_id)
    lca_node = doc.node_at(lca)

    tags = []
    distinct = set()
    for node in (node_a, node_b, lca_node):
        if node.dewey not in distinct:
            distinct.add(node.dewey)
            tags.append(node.tag)
    interior = []
    if node_a.dewey != lca:
        interior.extend(_chain_tags(collection, node_a, lca.depth))
    if node_b.dewey != lca:
        interior.extend(_chain_tags(collection, node_b, lca.depth))
    tags.extend(interior)
    return len(tags) == len(set(tags))


def xsearch(collection, inverted, keywords):
    """XSEarch answers: interconnected match tuples.

    Returns ``(doc_id, lca DeweyID, node tuple)`` entries, sorted, for
    every tuple (one node per keyword) whose pairs are all
    interconnected.
    """
    matcher = KeywordMatcher(collection, inverted)
    answers = []
    for doc_id, match_lists in matcher.match_sets(keywords).items():
        for combo in itertools.product(*match_lists):
            if all(
                interconnected(collection, combo[i], combo[j])
                for i, j in itertools.combinations(range(len(combo)), 2)
            ):
                lca = lca_dewey([node.dewey for node in combo])
                answers.append((doc_id, lca, tuple(combo)))
    answers.sort(key=lambda answer: (answer[0], answer[1]))
    return answers
